"""Serial vs parallel equivalence, seed plumbing, and the run_all CLI."""

import itertools

from repro.experiments.run_all import main
from repro.experiments.table2 import run_table2
from repro.experiments.workloads import workload
from repro.runtime import (
    EventBus,
    ExperimentRuntime,
    ResultCache,
    RuntimeConfig,
)

SMALL_WORKLOADS = ["300.twolf", "186.crafty"]
SCALE = 0.02


def quiet_runtime(tmp_path, jobs):
    return ExperimentRuntime(
        config=RuntimeConfig(jobs=jobs),
        cache=ResultCache(root=tmp_path / f"cache-j{jobs}"),
        bus=EventBus([]),
    )


class TestEquivalence:
    def test_serial_and_parallel_table2_rows_identical(self, tmp_path):
        serial = run_table2(
            SMALL_WORKLOADS, scale=SCALE, runtime=quiet_runtime(tmp_path, 1)
        )
        parallel = run_table2(
            SMALL_WORKLOADS, scale=SCALE, runtime=quiet_runtime(tmp_path, 2)
        )
        direct = run_table2(SMALL_WORKLOADS, scale=SCALE)
        assert serial == parallel == direct

    def test_run_all_stdout_identical_serial_vs_parallel(
        self, tmp_path, capsys
    ):
        base = [
            "--only",
            "table2",
            "--only",
            "speedups",
            "--workloads",
            *SMALL_WORKLOADS,
            "--scale",
            str(SCALE),
            "--quiet",
        ]
        assert (
            main(base + ["--jobs", "1", "--cache-dir", str(tmp_path / "c1")])
            == 0
        )
        serial_out = capsys.readouterr().out
        assert (
            main(base + ["--jobs", "2", "--cache-dir", str(tmp_path / "c2")])
            == 0
        )
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        assert "Table 2" in serial_out


class TestSeedPlumbing:
    def test_same_seed_same_trace(self):
        a = workload("164.gzip", scale=0.01, seed=11).accesses()
        b = workload("164.gzip", scale=0.01, seed=11).accesses()
        assert list(itertools.islice(a, 200)) == list(itertools.islice(b, 200))

    def test_different_seed_different_trace(self):
        a = workload("164.gzip", scale=0.01, seed=11).accesses()
        b = workload("164.gzip", scale=0.01, seed=12).accesses()
        assert list(itertools.islice(a, 200)) != list(itertools.islice(b, 200))

    def test_none_seed_keeps_calibrated_defaults(self):
        a = workload("164.gzip", scale=0.01).accesses()
        b = workload("164.gzip", scale=0.01, seed=None).accesses()
        assert list(itertools.islice(a, 200)) == list(itertools.islice(b, 200))

    def test_olden_seed_changes_input(self):
        # em3d's graph links are drawn from the seed, so the compute
        # phase of the trace follows a different random structure.
        default = list(workload("em3d", scale=0.1).accesses())
        seeded = list(workload("em3d", scale=0.1, seed=3).accesses())
        assert default != seeded


class TestRunAllFailureHandling:
    def test_unknown_workload_exits_nonzero_with_summary(self, tmp_path, capsys):
        code = main(
            [
                "--only",
                "table1",
                "--workloads",
                "nope",
                "--cache-dir",
                str(tmp_path / "c"),
                "--quiet",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "run_all:" in err
        assert "FAILED" in err

    def test_later_experiments_still_run_after_a_failure(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "--only",
                "table1",
                "--only",
                "table2",
                "--workloads",
                "nope",
                "--cache-dir",
                str(tmp_path / "c"),
                "--quiet",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        # Both experiments were attempted (no mid-stream crash after the
        # first bare traceback) and both are reported in the summary.
        assert "table1" in err
        assert "table2" in err
        assert "0/2 experiments ok" in err
