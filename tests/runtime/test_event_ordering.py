"""Event-stream ordering guarantees (satellite of the obs work).

Every job's lifecycle must read ``queued -> started -> (retried ->
started)* -> finished | failed`` in the emitted stream — even when
workers crash and the scheduler retries — and the obs bridge must
preserve that order into merged trace output, where same-millisecond
timestamps would otherwise shuffle it.
"""

import re

from repro.obs.bridge import bridge_job_events, runtime_trace_events
from repro.runtime import (
    EventBus,
    ExperimentRuntime,
    Job,
    ResultCache,
    RuntimeConfig,
)
from repro.runtime.events import MemorySink

ECHO = "tests.runtime.helper_jobs:echo_job"
FAIL = "tests.runtime.helper_jobs:failing_job"
CRASH_ONCE = "tests.runtime.helper_jobs:crash_once_job"
ALWAYS_CRASH = "tests.runtime.helper_jobs:always_crash_job"

#: a well-formed per-job lifecycle, as a regex over event names
LIFECYCLE = re.compile(
    r"^queued (started retried )*(started (finished|failed)|cache-hit)$"
)


def run_jobs(tmp_path, job_list, **config):
    sink = MemorySink()
    runtime = ExperimentRuntime(
        config=RuntimeConfig(**config),
        cache=ResultCache(root=tmp_path / "cache"),
        bus=EventBus([sink]),
    )
    runtime.map(job_list)
    runtime.close()
    return sink.events


def lifecycles(events):
    """Event-name sequence per job (by hash), in emission order."""
    per_job = {}
    for event in events:
        per_job.setdefault(event.job_hash, []).append(event.event)
    return per_job


class TestPerJobOrdering:
    def test_clean_parallel_run(self, tmp_path):
        events = run_jobs(
            tmp_path,
            [Job.create(ECHO, value=i) for i in range(6)],
            jobs=2,
            use_cache=False,
        )
        per_job = lifecycles(events)
        assert len(per_job) == 6
        for label, sequence in per_job.items():
            assert LIFECYCLE.match(" ".join(sequence)), (label, sequence)

    def test_crash_retry_keeps_order(self, tmp_path):
        events = run_jobs(
            tmp_path,
            [Job.create(CRASH_ONCE, marker_path=str(tmp_path / "marker"))]
            + [Job.create(ECHO, value=i) for i in range(3)],
            jobs=2,
            retries=1,
            use_cache=False,
        )
        per_job = lifecycles(events)
        crashed = next(s for label, s in per_job.items() if "retried" in s)
        assert crashed == ["queued", "started", "retried", "started", "finished"]
        for sequence in per_job.values():
            assert LIFECYCLE.match(" ".join(sequence)), sequence

    def test_exhausted_retries_end_in_failed(self, tmp_path):
        events = run_jobs(
            tmp_path,
            [Job.create(ALWAYS_CRASH)],
            jobs=2,
            retries=2,
            use_cache=False,
        )
        sequence = next(iter(lifecycles(events).values()))
        assert sequence == [
            "queued",
            "started",
            "retried",
            "started",
            "retried",
            "started",
            "failed",
        ]

    def test_job_exception_ends_in_failed_without_retry(self, tmp_path):
        events = run_jobs(
            tmp_path,
            [Job.create(FAIL, message="boom"), Job.create(ECHO, value=1)],
            jobs=2,
            retries=3,
            use_cache=False,
        )
        per_job = lifecycles(events)
        failed = next(s for s in per_job.values() if "failed" in s)
        assert failed == ["queued", "started", "failed"]


class TestBridgedOrdering:
    def test_bridge_keeps_crash_retry_order(self, tmp_path):
        events = run_jobs(
            tmp_path,
            [Job.create(CRASH_ONCE, marker_path=str(tmp_path / "marker"))],
            jobs=2,
            retries=1,
            use_cache=False,
        )
        bridged = bridge_job_events(events)
        # seq is strictly increasing, so order survives JSON round-trips
        # even when wall-clock timestamps collide.
        assert [e.seq for e in bridged] == list(range(1, len(bridged) + 1))
        kinds = [e.kind for e in bridged]
        assert kinds == [
            "runtime.queued",
            "runtime.started",
            "runtime.retried",
            "runtime.started",
            "runtime.finished",
        ]

    def test_merged_trace_span_covers_final_attempt(self, tmp_path):
        events = run_jobs(
            tmp_path,
            [Job.create(CRASH_ONCE, marker_path=str(tmp_path / "marker"))],
            jobs=2,
            retries=1,
            use_cache=False,
        )
        bridged = bridge_job_events(events)
        trace = runtime_trace_events(bridged)
        spans = [e for e in trace if e["ph"] == "X"]
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "finished"
        # The span opens at the *second* started (the successful attempt).
        second_started = [e for e in bridged if e.kind == "runtime.started"][1]
        assert span["ts"] == second_started.t
