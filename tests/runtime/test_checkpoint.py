"""SweepCheckpoint: journal, resume, torn tails, staleness, degradation."""

import json

import pytest

from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.health import health_snapshot, reset_health
from repro.runtime.job import Job
from repro.runtime.scheduler import (
    CACHED,
    OK,
    ExperimentRuntime,
    RuntimeConfig,
)
from repro.runtime.events import EventBus

ECHO = "tests.runtime.helper_jobs:echo_job"


@pytest.fixture(autouse=True)
def _clean_health():
    reset_health()
    yield
    reset_health()


def echo_jobs(n):
    return [Job.create(ECHO, label=f"j{i}", value=i) for i in range(n)]


def quiet_runtime(**kwargs):
    kwargs.setdefault("bus", EventBus([]))
    return ExperimentRuntime(**kwargs)


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        jobs = echo_jobs(3)
        checkpoint = SweepCheckpoint(path)
        for i, job in enumerate(jobs):
            checkpoint.record(job, {"value": i}, duration=0.5)
        checkpoint.close()

        resumed = SweepCheckpoint(path)
        assert len(resumed) == 3
        for i, job in enumerate(jobs):
            assert resumed.get(job) == {"value": i}
        resumed.close()

    def test_missing_file_is_empty(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "never-written.ckpt")
        assert len(checkpoint) == 0
        assert checkpoint.get(echo_jobs(1)[0]) is None

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        jobs = echo_jobs(2)
        first = SweepCheckpoint(path)
        first.record(jobs[0], {"value": 0})
        first.close()
        second = SweepCheckpoint(path)
        second.record(jobs[1], {"value": 1})
        second.close()
        lines = path.read_text().splitlines()
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == ["header", "done", "done"]


class TestRecovery:
    def test_torn_tail_is_dropped_and_trimmed(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        jobs = echo_jobs(2)
        checkpoint = SweepCheckpoint(path)
        checkpoint.record(jobs[0], {"value": 0})
        checkpoint.close()
        intact = path.read_bytes()
        # A kill mid-append leaves a torn half-record at the tail.
        path.write_bytes(
            intact + b'{"kind": "done", "job_hash": "deadbeef", "pay'
        )

        resumed = SweepCheckpoint(path)
        assert resumed.get(jobs[0]) == {"value": 0}
        assert len(resumed) == 1
        assert health_snapshot()["fault.checkpoint.torn_record"] == 1
        # The tail was physically trimmed, so the next append extends a
        # clean journal instead of landing after garbage.
        assert path.read_bytes() == intact
        resumed.record(jobs[1], {"value": 1})
        resumed.close()
        third = SweepCheckpoint(path)
        assert len(third) == 2
        third.close()

    def test_stale_code_version_discards_journal(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        job = echo_jobs(1)[0]
        old = SweepCheckpoint(path, code_version="old-version")
        old.record(job, {"value": 0})
        old.close()

        fresh = SweepCheckpoint(path, code_version="new-version")
        assert fresh.get(job) is None
        assert not path.exists()
        assert health_snapshot()["fault.checkpoint.stale_discarded"] == 1
        fresh.close()

    def test_unwritable_path_degrades_to_noop(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory is needed")
        checkpoint = SweepCheckpoint(blocker / "sweep.ckpt")
        job = echo_jobs(1)[0]
        checkpoint.record(job, {"value": 0})  # must not raise
        assert checkpoint.get(job) == {"value": 0}  # in-memory still works
        assert health_snapshot()["fault.checkpoint.write_failed"] >= 1
        assert "continuing without" in capsys.readouterr().err
        checkpoint.close()


class TestRuntimeIntegration:
    def test_completed_jobs_resume_as_cached_without_cache(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        jobs = echo_jobs(4)
        config = RuntimeConfig(jobs=1, use_cache=False)

        first = quiet_runtime(config=config, checkpoint=SweepCheckpoint(path))
        outcomes = first.map(jobs)
        assert [o.status for o in outcomes] == [OK] * 4
        first.close()

        second = quiet_runtime(config=config, checkpoint=SweepCheckpoint(path))
        resumed = second.map(jobs)
        assert [o.status for o in resumed] == [CACHED] * 4
        assert [o.payload for o in resumed] == [o.payload for o in outcomes]
        assert second.stats.executed == 0
        assert health_snapshot()["recovery.checkpoint.hits"] == 4
        second.close()

    def test_new_jobs_run_and_join_the_journal(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        config = RuntimeConfig(jobs=1, use_cache=False)
        first = quiet_runtime(config=config, checkpoint=SweepCheckpoint(path))
        first.map(echo_jobs(2))
        first.close()

        second = quiet_runtime(config=config, checkpoint=SweepCheckpoint(path))
        outcomes = second.map(echo_jobs(4))
        assert [o.status for o in outcomes] == [CACHED, CACHED, OK, OK]
        second.close()

        third = quiet_runtime(config=config, checkpoint=SweepCheckpoint(path))
        assert [o.status for o in third.map(echo_jobs(4))] == [CACHED] * 4
        third.close()
