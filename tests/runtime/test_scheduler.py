"""Scheduler behaviour: ordering, caching, crash retry, timeout, Ctrl-C."""

import time

import pytest

from repro.runtime import (
    EventBus,
    ExperimentRuntime,
    Job,
    JobError,
    ResultCache,
    RuntimeConfig,
    payloads,
)
from repro.runtime.events import MemorySink

ECHO = "tests.runtime.helper_jobs:echo_job"
PID = "tests.runtime.helper_jobs:pid_job"
SLOW = "tests.runtime.helper_jobs:slow_job"
FAIL = "tests.runtime.helper_jobs:failing_job"
CRASH_ONCE = "tests.runtime.helper_jobs:crash_once_job"
ALWAYS_CRASH = "tests.runtime.helper_jobs:always_crash_job"
INTERRUPT = "tests.runtime.helper_jobs:interrupt_job"


def runtime(tmp_path, sink=None, **config):
    return ExperimentRuntime(
        config=RuntimeConfig(**config),
        cache=ResultCache(root=tmp_path / "cache"),
        bus=EventBus([sink] if sink else []),
    )


class TestSerial:
    def test_outcomes_align_with_input_order(self, tmp_path):
        rt = runtime(tmp_path, jobs=1)
        jobs = [Job.create(ECHO, value=i) for i in range(5)]
        outcomes = rt.map(jobs)
        assert [o.payload["value"] for o in outcomes] == list(range(5))
        assert all(o.status == "ok" for o in outcomes)

    def test_second_run_hits_cache(self, tmp_path):
        rt = runtime(tmp_path, jobs=1)
        jobs = [Job.create(ECHO, value=i) for i in range(3)]
        rt.map(jobs)
        outcomes = rt.map(jobs)
        assert [o.status for o in outcomes] == ["cached"] * 3
        assert rt.stats.cache_hits == 3
        assert rt.stats.executed == 3

    def test_job_exception_is_isolated(self, tmp_path):
        rt = runtime(tmp_path, jobs=1)
        outcomes = rt.map(
            [
                Job.create(ECHO, value=1),
                Job.create(FAIL, message="boom"),
                Job.create(ECHO, value=2),
            ]
        )
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        assert "boom" in outcomes[1].error
        with pytest.raises(JobError, match="1 job"):
            payloads(outcomes)

    def test_keyboard_interrupt_drains(self, tmp_path):
        rt = runtime(tmp_path, jobs=1)
        outcomes = rt.map(
            [
                Job.create(ECHO, value=1),
                Job.create(INTERRUPT),
                Job.create(ECHO, value=2),
            ]
        )
        assert [o.status for o in outcomes] == [
            "ok",
            "interrupted",
            "interrupted",
        ]
        # The completed job survived into the cache: a re-run resumes.
        resumed = rt.map([Job.create(ECHO, value=1)])
        assert resumed[0].status == "cached"


class TestParallel:
    def test_results_in_input_order_across_workers(self, tmp_path):
        rt = runtime(tmp_path, jobs=2)
        jobs = [Job.create(ECHO, value=i) for i in range(6)]
        outcomes = rt.map(jobs)
        assert [o.payload["value"] for o in outcomes] == list(range(6))
        assert all(o.status == "ok" for o in outcomes)

    def test_jobs_actually_run_in_other_processes(self, tmp_path):
        import os

        rt = runtime(tmp_path, jobs=2, use_cache=False)
        # pid_job takes no params, so give each job a distinct dummy to
        # avoid within-call duplicate hashes hiding anything.
        outcomes = rt.map(
            [Job.create(PID), Job.create(SLOW, seconds=0.01)]
        )
        assert outcomes[0].payload["pid"] != os.getpid()

    def test_parallel_resume_from_cache(self, tmp_path):
        rt = runtime(tmp_path, jobs=2)
        jobs = [Job.create(ECHO, value=i) for i in range(4)]
        rt.map(jobs[:2])  # "interrupted" earlier run completed half
        outcomes = rt.map(jobs)
        assert [o.status for o in outcomes] == ["cached", "cached", "ok", "ok"]

    def test_worker_crash_is_retried(self, tmp_path):
        marker = tmp_path / "crash-marker"
        sink = MemorySink()
        rt = runtime(tmp_path, sink=sink, jobs=2, retries=1)
        outcomes = rt.map(
            [Job.create(CRASH_ONCE, marker_path=str(marker))]
        )
        assert outcomes[0].status == "ok"
        assert outcomes[0].payload["attempt"] == "second"
        assert outcomes[0].attempts == 2
        assert rt.stats.crash_retries == 1
        assert [e.event for e in sink.events] == [
            "queued",
            "started",
            "retried",
            "started",
            "finished",
        ]

    def test_crash_retries_are_bounded(self, tmp_path):
        rt = runtime(tmp_path, jobs=2, retries=1)
        outcomes = rt.map([Job.create(ALWAYS_CRASH)])
        assert outcomes[0].status == "failed"
        assert "exit code 23" in outcomes[0].error
        assert outcomes[0].attempts == 2  # initial + one retry

    def test_timeout_kills_overdue_job(self, tmp_path):
        rt = runtime(tmp_path, jobs=2, timeout=0.3)
        start = time.monotonic()
        outcomes = rt.map(
            [
                Job.create(SLOW, seconds=30.0),
                Job.create(ECHO, value=1),
            ]
        )
        elapsed = time.monotonic() - start
        assert elapsed < 10.0  # nowhere near the 30s sleep
        assert outcomes[0].status == "failed"
        assert "timeout" in outcomes[0].error
        assert outcomes[1].status == "ok"

    def test_job_exception_in_worker_not_retried(self, tmp_path):
        sink = MemorySink()
        rt = runtime(tmp_path, sink=sink, jobs=2, retries=3)
        outcomes = rt.map([Job.create(FAIL, message="det")])
        assert outcomes[0].status == "failed"
        assert outcomes[0].attempts == 1  # exceptions are deterministic
        assert "det" in outcomes[0].error


class TestCancelHook:
    """The external cancellation seam the service's drain uses: a
    ``cancel()`` callable polled between jobs that turns the rest of
    the batch into ``interrupted`` outcomes, exactly like Ctrl-C."""

    def test_serial_cancel_between_jobs(self, tmp_path):
        rt = runtime(tmp_path, jobs=1)
        checks = iter([False, True])

        def cancel():
            return next(checks, True)

        outcomes = rt.map(
            [Job.create(ECHO, value=i) for i in range(3)], cancel=cancel
        )
        assert [o.status for o in outcomes] == [
            "ok",
            "interrupted",
            "interrupted",
        ]
        # The finished job reached the cache: resubmission resumes.
        assert rt.map([Job.create(ECHO, value=0)])[0].status == "cached"

    def test_already_cancelled_runs_nothing(self, tmp_path):
        rt = runtime(tmp_path, jobs=1, use_cache=False)
        outcomes = rt.map(
            [Job.create(ECHO, value=i) for i in range(3)],
            cancel=lambda: True,
        )
        assert [o.status for o in outcomes] == ["interrupted"] * 3
        assert rt.stats.executed == 0

    def test_parallel_cancel_terminates_workers(self, tmp_path):
        import threading

        rt = runtime(tmp_path, jobs=2, use_cache=False)
        flag = threading.Event()
        flag.set()
        outcomes = rt.map(
            [Job.create(SLOW, seconds=30.0), Job.create(SLOW, seconds=31.0)],
            cancel=flag.is_set,
        )
        assert [o.status for o in outcomes] == ["interrupted"] * 2

    def test_event_is_set_works_as_cancel(self, tmp_path):
        """The exact shape the service passes: threading.Event.is_set."""
        import threading

        rt = runtime(tmp_path, jobs=1)
        flag = threading.Event()
        outcomes = rt.map(
            [Job.create(ECHO, value=41)], cancel=flag.is_set
        )
        assert outcomes[0].status == "ok"


class TestStats:
    def test_references_and_counters_accumulate(self, tmp_path):
        rt = runtime(tmp_path, jobs=1)
        rt.map([Job.create(ECHO, value=i) for i in range(3)])
        assert rt.stats.submitted == 3
        assert rt.stats.executed == 3
        assert rt.stats.references == 3  # echo_job reports 1 each
        assert rt.stats.wall_time > 0
