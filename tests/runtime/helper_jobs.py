"""Module-level job functions for scheduler tests.

Jobs resolve their functions by import path, so anything the scheduler
tests execute must live at module scope (lambdas and closures cannot
cross a process boundary).
"""

import os
import time
from pathlib import Path


def echo_job(value):
    return {"value": value, "references": 1}


def pid_job():
    return {"pid": os.getpid()}


def slow_job(seconds):
    time.sleep(seconds)
    return {"slept": seconds}


def failing_job(message):
    raise ValueError(message)


def crash_once_job(marker_path):
    """Die hard (no exception, no pipe message) on the first attempt."""
    marker = Path(marker_path)
    if not marker.exists():
        marker.write_text("crashed")
        os._exit(17)
    return {"attempt": "second", "references": 1}


def always_crash_job():
    os._exit(23)


def interrupt_job():
    raise KeyboardInterrupt


def bad_return_job():
    return ["not", "a", "dict"]
