"""Result-cache behaviour: hit/miss, invalidation, maintenance."""

import json

from repro.runtime import Job, ResultCache, code_fingerprint
from repro.runtime.cache import CACHE_DIR_ENV, default_cache_root

ECHO = "tests.runtime.helper_jobs:echo_job"


def job(**params):
    return Job.create(ECHO, **params)


class TestHitMiss:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.get(job(value=1)) is None
        cache.put(job(value=1), {"value": 1}, duration=0.25)
        assert cache.get(job(value=1)) == {"value": 1}
        assert job(value=1) in cache

    def test_param_change_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(job(value=1, scale=0.5), {"value": 1})
        assert cache.get(job(value=1, scale=0.25)) is None
        assert cache.get(job(value=2, scale=0.5)) is None

    def test_code_version_change_invalidates(self, tmp_path):
        old = ResultCache(root=tmp_path, code_version="aaaa")
        old.put(job(value=1), {"value": 1})
        new = ResultCache(root=tmp_path, code_version="bbbb")
        assert new.get(job(value=1)) is None  # stale generation ignored
        assert old.get(job(value=1)) == {"value": 1}

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        path = cache.put(job(value=1), {"value": 1})
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(job(value=1)) is None


class TestLayout:
    def test_artifacts_are_json_keyed_by_hash(self, tmp_path):
        cache = ResultCache(root=tmp_path, code_version="cafe")
        target = job(value=3)
        path = cache.put(target, {"value": 3})
        assert path == tmp_path / "cafe" / f"{target.hash}.json"
        artifact = json.loads(path.read_text(encoding="utf-8"))
        assert artifact["fn"] == ECHO
        assert artifact["params"] == {"value": 3}
        assert artifact["code_version"] == "cafe"
        assert artifact["payload"] == {"value": 3}

    def test_env_var_sets_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "shared"))
        assert default_cache_root() == tmp_path / "shared"
        assert ResultCache().root == tmp_path / "shared"

    def test_code_fingerprint_is_stable_here(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestMaintenance:
    def test_status_counts_current_and_stale(self, tmp_path):
        old = ResultCache(root=tmp_path, code_version="aaaa")
        old.put(job(value=1), {"value": 1})
        new = ResultCache(root=tmp_path, code_version="bbbb")
        new.put(job(value=1), {"value": 1})
        new.put(job(value=2), {"value": 2})
        status = new.status()
        assert status.current_entries == 2
        assert status.stale_entries == 1
        assert status.by_function == {ECHO: 2}
        assert status.current_bytes > 0

    def test_clear_stale_only(self, tmp_path):
        old = ResultCache(root=tmp_path, code_version="aaaa")
        old.put(job(value=1), {"value": 1})
        new = ResultCache(root=tmp_path, code_version="bbbb")
        new.put(job(value=1), {"value": 1})
        assert new.clear(stale_only=True) == 1
        assert new.get(job(value=1)) == {"value": 1}
        assert new.clear() == 1
        assert new.get(job(value=1)) is None

    def test_clear_missing_root_is_noop(self, tmp_path):
        assert ResultCache(root=tmp_path / "nope").clear() == 0


def _age(path, days):
    import os
    import time

    past = time.time() - days * 86400.0
    os.utime(path, (past, past))


class TestPrune:
    def test_prune_by_age_keeps_fresh_artifacts(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        old_path = cache.put(job(value=1), {"value": 1})
        cache.put(job(value=2), {"value": 2})
        _age(old_path, days=10)
        assert cache.prune(older_than_days=7) == 1
        assert cache.get(job(value=1)) is None
        assert cache.get(job(value=2)) == {"value": 2}

    def test_prune_spans_generations_and_drops_empty_dirs(self, tmp_path):
        current = ResultCache(root=tmp_path, code_version="bbbb")
        stale = ResultCache(root=tmp_path, code_version="aaaa")
        _age(stale.put(job(value=1), {"value": 1}), days=30)
        current.put(job(value=1), {"value": 1})
        assert current.prune(older_than_days=7) == 1
        assert not (tmp_path / "aaaa").exists()  # emptied, removed
        assert current.get(job(value=1)) == {"value": 1}

    def test_prune_sweeps_stale_staging_files_uncounted(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(job(value=1), {"value": 1})
        crashed = cache.generation_dir / ".tmp-crashed-writer.json"
        crashed.write_text("{ partial", encoding="utf-8")
        _age(crashed, days=1)
        fresh = cache.generation_dir / ".tmp-live-writer.json"
        fresh.write_text("{ partial", encoding="utf-8")
        # Leftovers are swept but not counted as artifacts; a staging
        # file younger than an hour may belong to a live writer.
        assert cache.prune(older_than_days=7) == 0
        assert not crashed.exists()
        assert fresh.exists()
        assert cache.get(job(value=1)) == {"value": 1}

    def test_prune_zero_days_clears_everything_published(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        _age(cache.put(job(value=1), {"value": 1}), days=0.001)
        assert cache.prune(older_than_days=0) == 1
        assert cache.get(job(value=1)) is None

    def test_prune_rejects_negative_age(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            ResultCache(root=tmp_path).prune(older_than_days=-1)

    def test_prune_missing_root_is_noop(self, tmp_path):
        assert ResultCache(root=tmp_path / "nope").prune(older_than_days=0) == 0
