"""Result-cache behaviour: hit/miss, invalidation, maintenance."""

import json

from repro.runtime import Job, ResultCache, code_fingerprint
from repro.runtime.cache import CACHE_DIR_ENV, default_cache_root

ECHO = "tests.runtime.helper_jobs:echo_job"


def job(**params):
    return Job.create(ECHO, **params)


class TestHitMiss:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.get(job(value=1)) is None
        cache.put(job(value=1), {"value": 1}, duration=0.25)
        assert cache.get(job(value=1)) == {"value": 1}
        assert job(value=1) in cache

    def test_param_change_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(job(value=1, scale=0.5), {"value": 1})
        assert cache.get(job(value=1, scale=0.25)) is None
        assert cache.get(job(value=2, scale=0.5)) is None

    def test_code_version_change_invalidates(self, tmp_path):
        old = ResultCache(root=tmp_path, code_version="aaaa")
        old.put(job(value=1), {"value": 1})
        new = ResultCache(root=tmp_path, code_version="bbbb")
        assert new.get(job(value=1)) is None  # stale generation ignored
        assert old.get(job(value=1)) == {"value": 1}

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        path = cache.put(job(value=1), {"value": 1})
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(job(value=1)) is None


class TestLayout:
    def test_artifacts_are_json_keyed_by_hash(self, tmp_path):
        cache = ResultCache(root=tmp_path, code_version="cafe")
        target = job(value=3)
        path = cache.put(target, {"value": 3})
        assert path == tmp_path / "cafe" / f"{target.hash}.json"
        artifact = json.loads(path.read_text(encoding="utf-8"))
        assert artifact["fn"] == ECHO
        assert artifact["params"] == {"value": 3}
        assert artifact["code_version"] == "cafe"
        assert artifact["payload"] == {"value": 3}

    def test_env_var_sets_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "shared"))
        assert default_cache_root() == tmp_path / "shared"
        assert ResultCache().root == tmp_path / "shared"

    def test_code_fingerprint_is_stable_here(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestMaintenance:
    def test_status_counts_current_and_stale(self, tmp_path):
        old = ResultCache(root=tmp_path, code_version="aaaa")
        old.put(job(value=1), {"value": 1})
        new = ResultCache(root=tmp_path, code_version="bbbb")
        new.put(job(value=1), {"value": 1})
        new.put(job(value=2), {"value": 2})
        status = new.status()
        assert status.current_entries == 2
        assert status.stale_entries == 1
        assert status.by_function == {ECHO: 2}
        assert status.current_bytes > 0

    def test_clear_stale_only(self, tmp_path):
        old = ResultCache(root=tmp_path, code_version="aaaa")
        old.put(job(value=1), {"value": 1})
        new = ResultCache(root=tmp_path, code_version="bbbb")
        new.put(job(value=1), {"value": 1})
        assert new.clear(stale_only=True) == 1
        assert new.get(job(value=1)) == {"value": 1}
        assert new.clear() == 1
        assert new.get(job(value=1)) is None

    def test_clear_missing_root_is_noop(self, tmp_path):
        assert ResultCache(root=tmp_path / "nope").clear() == 0
