"""The ``python -m repro.runtime`` command line."""

from repro.runtime import Job, ResultCache
from repro.runtime.cli import main

ECHO = "tests.runtime.helper_jobs:echo_job"


class TestStatusAndClear:
    def test_status_reports_entries(self, tmp_path, capsys):
        cache = ResultCache(root=tmp_path)
        cache.put(Job.create(ECHO, value=1), {"value": 1})
        assert main(["status", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "1 artifacts" in out
        assert ECHO in out

    def test_clear_cache_removes_artifacts(self, tmp_path, capsys):
        cache = ResultCache(root=tmp_path)
        cache.put(Job.create(ECHO, value=1), {"value": 1})
        assert main(["clear-cache", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 artifacts" in capsys.readouterr().out
        assert cache.get(Job.create(ECHO, value=1)) is None

    def test_clear_cache_stale_only_keeps_current(self, tmp_path, capsys):
        current = ResultCache(root=tmp_path)
        current.put(Job.create(ECHO, value=1), {"value": 1})
        stale = ResultCache(root=tmp_path, code_version="deadbeef")
        stale.put(Job.create(ECHO, value=1), {"value": 1})
        assert (
            main(["clear-cache", "--stale-only", "--cache-dir", str(tmp_path)])
            == 0
        )
        assert current.get(Job.create(ECHO, value=1)) == {"value": 1}
        assert stale.get(Job.create(ECHO, value=1)) is None

    def test_clear_cache_older_than_is_retention(self, tmp_path, capsys):
        import os
        import time

        cache = ResultCache(root=tmp_path)
        old_path = cache.put(Job.create(ECHO, value=1), {"value": 1})
        cache.put(Job.create(ECHO, value=2), {"value": 2})
        past = time.time() - 14 * 86400.0
        os.utime(old_path, (past, past))
        assert (
            main(
                [
                    "clear-cache",
                    "--older-than", "7",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "removed 1 artifacts older than 7 days" in out
        assert cache.get(Job.create(ECHO, value=1)) is None
        assert cache.get(Job.create(ECHO, value=2)) == {"value": 2}


class TestRunForwarding:
    def test_run_forwards_to_run_all(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--only", "speedups",
                "--workloads", "bisort",
                "--scale", "0.05",
                "--cache-dir", str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        assert "Projected speedup" in capsys.readouterr().out
