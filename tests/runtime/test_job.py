"""Job identity: content hashes must be canonical and process-stable."""

import subprocess
import sys

import pytest

from repro.runtime import Job, JobError, execute_job, resolve_job

ECHO = "tests.runtime.helper_jobs:echo_job"


class TestJobHash:
    def test_kwarg_order_is_canonical(self):
        a = Job.create(ECHO, value=1)
        b = Job(fn=ECHO, params=(("value", 1),))
        assert a.hash == b.hash

        multi_a = Job.create(ECHO, x=1, y=2)
        multi_b = Job(fn=ECHO, params=(("y", 2), ("x", 1)))
        # Job.create sorts; a hand-built unsorted tuple hashes the same
        # because hashing goes through canonical JSON.
        assert multi_a.hash == multi_b.hash

    def test_label_does_not_affect_hash_or_equality(self):
        a = Job.create(ECHO, label="pretty name", value=1)
        b = Job.create(ECHO, label="other name", value=1)
        assert a.hash == b.hash
        assert a == b

    def test_params_and_fn_do_affect_hash(self):
        base = Job.create(ECHO, value=1)
        assert base.hash != Job.create(ECHO, value=2).hash
        assert base.hash != Job.create("tests.runtime.helper_jobs:pid_job").hash
        assert (
            Job.create(ECHO, value=1, seed=None).hash
            != Job.create(ECHO, value=1, seed=0).hash
        )

    def test_hash_is_stable_across_processes(self):
        """A fresh interpreter computes the identical hash — the
        property the resume-from-cache workflow rests on."""
        job = Job.create(ECHO, name="179.art", scale=0.5, seed=7)
        script = (
            "from repro.runtime import Job; "
            f"print(Job.create({ECHO!r}, name='179.art', scale=0.5, seed=7).hash)"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == job.hash

    def test_fn_must_name_module_and_function(self):
        with pytest.raises(ValueError):
            Job.create("not_a_path")


class TestNonFiniteParams:
    """NaN/Infinity are not portable JSON: different clients encode the
    non-standard tokens differently, so identical submissions could
    hash apart.  They must be rejected loudly, at submission time."""

    def test_canonical_json_rejects_nan_with_location(self):
        from repro.runtime.job import canonical_json

        with pytest.raises(ValueError) as exc_info:
            canonical_json({"scale": float("nan")})
        message = str(exc_info.value)
        assert "$.scale" in message
        assert "not portable JSON" in message

    def test_canonical_json_locates_nested_infinity(self):
        from repro.runtime.job import canonical_json

        with pytest.raises(ValueError) as exc_info:
            canonical_json({"sweep": {"points": [0.5, float("inf")]}})
        assert "$.sweep.points[1]" in str(exc_info.value)

    def test_job_create_fails_eagerly(self):
        # At Job.create, not later inside .hash deep in a worker.
        with pytest.raises(ValueError) as exc_info:
            Job.create(ECHO, scale=float("nan"))
        assert "$.scale" in str(exc_info.value)

    def test_finite_floats_still_fine(self):
        job = Job.create(ECHO, scale=0.5, offset=-1e308)
        assert job.hash


class TestExecution:
    def test_execute_runs_and_times(self):
        payload, duration = execute_job(Job.create(ECHO, value=41))
        assert payload == {"value": 41, "references": 1}
        assert duration >= 0

    def test_resolve_unknown_module(self):
        with pytest.raises(JobError):
            resolve_job(Job.create("no.such.module:fn"))

    def test_resolve_unknown_attribute(self):
        with pytest.raises(JobError):
            resolve_job(Job.create("tests.runtime.helper_jobs:missing"))

    def test_non_dict_payload_rejected(self):
        with pytest.raises(JobError):
            execute_job(Job.create("tests.runtime.helper_jobs:bad_return_job"))
