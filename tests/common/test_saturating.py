"""Saturating arithmetic: the paper's sign convention and clamping."""

import pytest
from hypothesis import given, strategies as st

from repro.common.saturating import (
    SaturatingCounter,
    SaturatingInt,
    saturate,
    saturating_bounds,
    sign,
)


class TestSign:
    def test_positive(self):
        assert sign(5) == 1

    def test_negative(self):
        assert sign(-5) == -1

    def test_zero_is_positive(self):
        # The paper's convention: sign(x) = 1 if x >= 0.
        assert sign(0) == 1

    @given(st.integers())
    def test_sign_is_never_zero(self, x):
        assert sign(x) in (1, -1)


class TestSaturate:
    def test_bounds_16_bit(self):
        assert saturating_bounds(16) == (-32768, 32767)

    def test_clamps_high(self):
        assert saturate(100_000, 16) == 32767

    def test_clamps_low(self):
        assert saturate(-100_000, 16) == -32768

    def test_identity_in_range(self):
        assert saturate(1234, 16) == 1234

    def test_rejects_one_bit(self):
        with pytest.raises(ValueError):
            saturate(0, 1)

    @given(st.integers(), st.integers(min_value=2, max_value=64))
    def test_result_always_in_range(self, x, bits):
        lo, hi = saturating_bounds(bits)
        assert lo <= saturate(x, bits) <= hi

    @given(st.integers(min_value=2, max_value=64))
    def test_extremes_are_fixed_points(self, bits):
        lo, hi = saturating_bounds(bits)
        assert saturate(lo, bits) == lo
        assert saturate(hi, bits) == hi


class TestSaturatingInt:
    def test_add_saturates(self):
        a = SaturatingInt(32767, bits=16)
        assert (a + 10).value == 32767

    def test_sub_saturates(self):
        a = SaturatingInt(-32768, bits=16)
        assert (a - 1).value == -32768

    def test_add_other_saturating_int(self):
        a = SaturatingInt(10) + SaturatingInt(-3)
        assert a.value == 7

    def test_neg(self):
        assert (-SaturatingInt(5)).value == -5

    def test_neg_of_minimum_saturates(self):
        lo, hi = saturating_bounds(16)
        assert (-SaturatingInt(lo)).value == hi

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            SaturatingInt(40_000, bits=16)

    def test_int_conversion(self):
        assert int(SaturatingInt(42)) == 42

    def test_sign_property_zero(self):
        assert SaturatingInt(0).sign == 1

    @given(
        st.integers(min_value=-32768, max_value=32767),
        st.integers(min_value=-100_000, max_value=100_000),
    )
    def test_add_matches_saturate(self, start, amount):
        result = SaturatingInt(start, bits=16) + amount
        assert result.value == saturate(start + amount, 16)


class TestSaturatingCounter:
    def test_starts_at_zero(self):
        assert SaturatingCounter(16).value == 0

    def test_add_returns_new_value(self):
        c = SaturatingCounter(16)
        assert c.add(5) == 5
        assert c.add(-7) == -2

    def test_saturates_up(self):
        c = SaturatingCounter(4)  # range [-8, 7]
        c.add(100)
        assert c.value == 7

    def test_saturates_down(self):
        c = SaturatingCounter(4)
        c.add(-100)
        assert c.value == -8

    def test_sign_value_convention(self):
        c = SaturatingCounter(8)
        assert c.sign_value == 1
        c.add(-1)
        assert c.sign_value == -1

    def test_reset(self):
        c = SaturatingCounter(8, initial=5)
        c.reset()
        assert c.value == 0

    def test_reset_out_of_range_rejected(self):
        c = SaturatingCounter(4)
        with pytest.raises(ValueError):
            c.reset(1000)

    def test_initial_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(4, initial=100)

    @given(st.lists(st.integers(min_value=-50, max_value=50), max_size=200))
    def test_value_stays_in_range(self, amounts):
        c = SaturatingCounter(6)
        for amount in amounts:
            c.add(amount)
            assert c.minimum <= c.value <= c.maximum

    @given(st.lists(st.integers(min_value=-3, max_value=3), max_size=100))
    def test_matches_unbounded_when_never_saturating(self, amounts):
        # With a wide counter and small steps, saturation never engages.
        c = SaturatingCounter(32)
        total = 0
        for amount in amounts:
            c.add(amount)
            total += amount
        assert c.value == total
