"""Fenwick tree vs a naive array reference."""

import pytest
from hypothesis import given, strategies as st

from repro.common.fenwick import FenwickTree


class TestBasics:
    def test_empty_total(self):
        assert FenwickTree(0).total() == 0

    def test_single_slot(self):
        t = FenwickTree(1)
        t.add(0, 5)
        assert t.prefix_sum(0) == 5
        assert t.total() == 5

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_out_of_range_add(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(4, 1)

    def test_out_of_range_query(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.prefix_sum(4)

    def test_range_sum_empty_when_lo_gt_hi(self):
        t = FenwickTree(8)
        t.add(3, 7)
        assert t.range_sum(5, 2) == 0

    def test_negative_amounts(self):
        t = FenwickTree(4)
        t.add(2, 3)
        t.add(2, -1)
        assert t.range_sum(2, 2) == 2


@given(
    size=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_matches_naive_reference(size, data):
    operations = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=size - 1),
                st.integers(min_value=-5, max_value=5),
            ),
            max_size=100,
        )
    )
    tree = FenwickTree(size)
    reference = [0] * size
    for index, amount in operations:
        tree.add(index, amount)
        reference[index] += amount
    for i in range(size):
        assert tree.prefix_sum(i) == sum(reference[: i + 1])
    lo = data.draw(st.integers(min_value=0, max_value=size - 1))
    hi = data.draw(st.integers(min_value=0, max_value=size - 1))
    if lo <= hi:
        assert tree.range_sum(lo, hi) == sum(reference[lo : hi + 1])
    assert tree.total() == sum(reference)
