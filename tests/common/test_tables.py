"""Text-table rendering and the paper's number formats."""

import pytest

from repro.common.tables import TextTable, format_count, format_per_event


class TestFormatCount:
    def test_small_exact(self):
        assert format_count(4500) == "4500"

    def test_large_scientific(self):
        assert format_count(2.2e6) == "2.2e6"

    def test_paper_migration_count(self):
        # Table 2: gzip migrations "2.2 x 10^6".
        assert format_count(2_200_000) == "2.2e6"

    def test_boundary(self):
        assert format_count(9999) == "9999"
        assert format_count(10_000) == "1.0e4"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_count(-1)


class TestFormatPerEvent:
    def test_no_events(self):
        assert format_per_event(1000, 0) == "-"

    def test_simple_ratio(self):
        assert format_per_event(9000, 2) == "4500"


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable(["benchmark", "L2 miss"])
        t.add_row(["art", "11"])
        lines = t.render().splitlines()
        assert lines[0] == "benchmark | L2 miss"
        assert lines[1] == "----------+--------"
        assert lines[2] == "art       | 11"

    def test_wide_cell_expands_column(self):
        t = TextTable(["a"])
        t.add_row(["a-very-wide-cell"])
        assert "a-very-wide-cell" in t.render()

    def test_wrong_arity_rejected(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(["only-one"])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_rows_are_copies(self):
        t = TextTable(["a"])
        t.add_row([1])
        rows = t.rows
        rows[0][0] = "mutated"
        assert t.rows[0][0] == "1"

    def test_str_equals_render(self):
        t = TextTable(["x"])
        t.add_row([3])
        assert str(t) == t.render()
