"""Deterministic RNG helpers."""

import numpy as np
import pytest

from repro.common.rng import make_rng, split_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7).integers(0, 1000, size=10)
        b = make_rng(7).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1_000_000, size=10)
        b = make_rng(2).integers(0, 1_000_000, size=10)
        assert (a != b).any()

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g


class TestSplitRng:
    def test_count(self):
        children = split_rng(make_rng(0), 5)
        assert len(children) == 5

    def test_children_independent_streams(self):
        children = split_rng(make_rng(0), 2)
        a = children[0].integers(0, 1_000_000, size=10)
        b = children[1].integers(0, 1_000_000, size=10)
        assert (a != b).any()

    def test_deterministic(self):
        a = split_rng(make_rng(3), 3)[1].integers(0, 1000, size=5)
        b = split_rng(make_rng(3), 3)[1].integers(0, 1000, size=5)
        assert (a == b).all()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            split_rng(make_rng(0), -1)

    def test_zero_count(self):
        assert split_rng(make_rng(0), 0) == []
