"""A minimal sweep driver the chaos suite can kill and restart.

Usage: ``python tests/chaos/driver.py CHECKPOINT_FILE JOB_COUNT``

Runs ``JOB_COUNT`` echo jobs serially through a checkpointed runtime
with the result cache disabled — the checkpoint journal is the *only*
persistence — and prints one JSON line of outcome statuses.  Armed
fault plans (``REPRO_FAULTS``) apply as usual, which is how the test
kills this driver mid-sweep.
"""

import json
import sys

from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.events import EventBus
from repro.runtime.job import Job
from repro.runtime.scheduler import ExperimentRuntime, RuntimeConfig


def main(argv):
    checkpoint_path, count = argv[0], int(argv[1])
    jobs = [
        Job.create("tests.chaos.jobs:echo_job", label=f"j{i}", value=i)
        for i in range(count)
    ]
    runtime = ExperimentRuntime(
        config=RuntimeConfig(jobs=1, use_cache=False),
        bus=EventBus([]),
        checkpoint=SweepCheckpoint(checkpoint_path),
    )
    outcomes = runtime.map(jobs)
    runtime.close()
    print(json.dumps([outcome.status for outcome in outcomes]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
