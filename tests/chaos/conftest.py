"""Chaos suite fixtures: armed fault plans, clean health counters.

Every test here injects scripted faults (:mod:`repro.faults`) into a
real stack — scheduler, cache, sidecars, service — and asserts the
recovery contract from ``docs/robustness.md``: the run ends in either
bit-identical results or a clean, typed error.  Never a hang, never a
traceback, never a silently wrong answer.
"""

import pytest

from repro import faults
from repro.runtime.events import EventBus
from repro.runtime.health import reset_health
from repro.runtime.scheduler import ExperimentRuntime, RuntimeConfig


@pytest.fixture(autouse=True)
def _pristine_faults():
    """Disarm plans and zero health counters around every test."""
    faults.uninstall()
    reset_health()
    yield
    faults.uninstall()
    reset_health()


@pytest.fixture
def arm():
    """Install a fault plan for this test (auto-disarmed after)."""

    def _arm(*specs, seed=0):
        return faults.install(faults.FaultPlan.of(*specs, seed=seed))

    return _arm


@pytest.fixture
def quiet_runtime(tmp_path):
    """Factory for runtimes with a private cache and silent event bus."""
    from repro.runtime.cache import ResultCache

    built = []

    def factory(cache_dir=None, **config_kwargs):
        config_kwargs.setdefault("retry_backoff", 0.01)
        runtime = ExperimentRuntime(
            config=RuntimeConfig(**config_kwargs),
            cache=ResultCache(root=cache_dir or tmp_path / "cache"),
            bus=EventBus([]),
        )
        built.append(runtime)
        return runtime

    yield factory
    for runtime in built:
        runtime.close()
