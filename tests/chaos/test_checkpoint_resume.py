"""Kill a sweep driver mid-flight; restart; lose only in-flight work.

The acceptance scenario: a driver (or broker) dies hard — SIGKILL
semantics, no cleanup — partway through a sweep.  A restart against the
same checkpoint journal recomputes *only* the jobs that had not
finished, and the final outcome set is identical to an undisturbed run.
"""

import json
import os
import subprocess
import sys

from repro import faults
from repro.faults import FaultPlan, FaultSpec

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
DRIVER = os.path.join(REPO_ROOT, "tests", "chaos", "driver.py")


def run_driver(checkpoint, count, plan=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
    )
    if plan is not None:
        env[faults.FAULTS_ENV] = plan.to_json()
    else:
        env.pop(faults.FAULTS_ENV, None)
    return subprocess.run(
        [sys.executable, DRIVER, str(checkpoint), str(count)],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


class TestDriverKilledMidSweep:
    def test_restart_recomputes_only_inflight_jobs(self, tmp_path):
        checkpoint = tmp_path / "sweep.ckpt"

        # Kill the driver as job 3 (arrival 3) starts: jobs 1-2 are
        # journaled, job 3 was in flight, jobs 4-5 never started.
        plan = FaultPlan.of(
            FaultSpec(site="runtime.job.start", action="crash", nth=3)
        )
        crashed = run_driver(checkpoint, 5, plan=plan)
        assert crashed.returncode == faults.CRASH_EXIT_CODE
        assert crashed.stdout == ""  # died mid-sweep, no summary line
        journal = [
            json.loads(line)
            for line in checkpoint.read_text().splitlines()
        ]
        assert [record["kind"] for record in journal] == [
            "header",
            "done",
            "done",
        ]

        # Restart, no faults: completed jobs come from the journal.
        resumed = run_driver(checkpoint, 5)
        assert resumed.returncode == 0, resumed.stderr
        statuses = json.loads(resumed.stdout)
        assert statuses == ["cached", "cached", "ok", "ok", "ok"]

        # A third run is pure journal hits.
        rerun = run_driver(checkpoint, 5)
        assert json.loads(rerun.stdout) == ["cached"] * 5

    def test_kill_during_journal_append_is_recoverable(self, tmp_path):
        checkpoint = tmp_path / "sweep.ckpt"
        complete = run_driver(checkpoint, 3)
        assert json.loads(complete.stdout) == ["ok"] * 3

        # Simulate the kill landing mid-append: tear the final record.
        raw = checkpoint.read_bytes()
        checkpoint.write_bytes(raw[:-9])

        resumed = run_driver(checkpoint, 3)
        assert resumed.returncode == 0, resumed.stderr
        # The torn record's job recomputes; the intact ones resume.
        assert json.loads(resumed.stdout) == ["cached", "cached", "ok"]
