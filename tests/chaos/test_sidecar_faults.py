"""Sidecar chaos: torn ``.l1f.npz`` records, crashes mid-publish.

Recovery contract: a corrupt sidecar is quarantined and rebuilt to an
identical record; a process killed between staging and publish leaves
*no* visible sidecar (atomicity — a concurrent reader can never load a
partial record), and the next build succeeds.
"""

import os
import signal
import subprocess
import sys
import time

from repro import faults
from repro.faults import FaultPlan, FaultSpec
from repro.kernels.l1filter import ensure_l1_filter, l1_filter_job_for
from repro.runtime.cache import QUARANTINE_DIR, ResultCache
from repro.runtime.health import health_snapshot

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))

WORKLOAD = "mst"
SCALE = 0.05


def record_fingerprint(record):
    return (
        record.accesses,
        record.records,
        record.il1_misses,
        record.dl1_misses,
        record.max_instruction,
        record.indices.tobytes(),
        record.lines.tobytes(),
        record.kinds.tobytes(),
    )


def child_env(cache_root, plan=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
    )
    env["REPRO_CACHE_DIR"] = str(cache_root)
    if plan is not None:
        env[faults.FAULTS_ENV] = plan.to_json()
    else:
        env.pop(faults.FAULTS_ENV, None)
    return env


BUILD_SCRIPT = (
    "from repro.kernels.l1filter import ensure_l1_filter\n"
    f"record, cached = ensure_l1_filter({WORKLOAD!r}, scale={SCALE})\n"
    "print('cached' if cached else 'built', record.records)\n"
)


class TestCorruptSidecar:
    def test_torn_sidecar_is_quarantined_and_rebuilt_identically(
        self, arm, tmp_path, capsys
    ):
        cache = ResultCache(root=tmp_path / "cache")
        # Publish a *corrupted* sidecar: the truncation happens to the
        # staged bytes right before the atomic rename, so the torn
        # record is what lands on disk.
        arm(FaultSpec(site="sidecar.save.bytes", action="truncate", arg=64))
        first, cached = ensure_l1_filter(WORKLOAD, scale=SCALE, cache=cache)
        assert not cached
        faults.uninstall()

        second, cached = ensure_l1_filter(WORKLOAD, scale=SCALE, cache=cache)
        assert not cached  # the torn sidecar was not trusted
        assert record_fingerprint(second) == record_fingerprint(first)
        health = health_snapshot()
        assert health["fault.sidecar.corrupt"] == 1
        assert health["recovery.sidecar.rebuilt"] == 1
        corrupt = list((cache.root / QUARANTINE_DIR).glob("*.corrupt"))
        assert len(corrupt) == 1
        assert "corrupt sidecar" in capsys.readouterr().err

        # The rebuild republished a good record: now it serves.
        third, cached = ensure_l1_filter(WORKLOAD, scale=SCALE, cache=cache)
        assert cached
        assert record_fingerprint(third) == record_fingerprint(first)

    def test_sidecar_write_failure_serves_in_memory_record(
        self, tmp_path, capsys
    ):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("unusable cache root")
        cache = ResultCache(root=blocker)
        record, cached = ensure_l1_filter(WORKLOAD, scale=SCALE, cache=cache)
        assert not cached
        assert record.records > 0
        assert health_snapshot()["fault.sidecar.write_failed"] == 1
        assert "sidecar write failed" in capsys.readouterr().err


class TestCrashMidPublish:
    def test_crash_between_stage_and_publish_leaves_no_sidecar(
        self, tmp_path
    ):
        cache_root = tmp_path / "cache"
        plan = FaultPlan.of(FaultSpec(site="sidecar.save", action="crash"))
        result = subprocess.run(
            [sys.executable, "-c", BUILD_SCRIPT],
            env=child_env(cache_root, plan),
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == faults.CRASH_EXIT_CODE

        # The reader-visible invariant: no partial .l1f.npz, ever.
        cache = ResultCache(root=cache_root)
        job = l1_filter_job_for(WORKLOAD, scale=SCALE)
        sidecar = cache.generation_dir / f"{job.hash}.l1f.npz"
        assert not sidecar.exists()
        # Staged leftovers are allowed (prune() reaps them), but they
        # must never match the *.l1f.npz pattern a reader looks for.
        assert list(cache_root.rglob("*.l1f.npz")) == []

        # Next build (no faults) succeeds and publishes atomically.
        result = subprocess.run(
            [sys.executable, "-c", BUILD_SCRIPT],
            env=child_env(cache_root),
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.startswith("built")
        assert sidecar.is_file()
        local, cached = ensure_l1_filter(
            WORKLOAD, scale=SCALE, cache=ResultCache(root=cache_root)
        )
        assert cached
        assert local.records > 0

    def test_sigterm_during_publish_window_leaves_no_sidecar(self, tmp_path):
        cache_root = tmp_path / "cache"
        # Hang at the publish seam (tmp staged, rename not yet done),
        # then SIGTERM the builder — the kill lands inside the window.
        plan = FaultPlan.of(
            FaultSpec(site="sidecar.save", action="hang", arg=60.0)
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", BUILD_SCRIPT],
            env=child_env(cache_root, plan),
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        # Wait for the staged tmp file to appear, then terminate.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if list(cache_root.rglob(".tmp-*.npz")):
                break
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=10.0)
        proc.stdout.close()
        proc.stderr.close()
        assert proc.returncode == -signal.SIGTERM
        assert list(cache_root.rglob("*.l1f.npz")) == []

        # The interrupted build never published; a clean retry does.
        record, cached = ensure_l1_filter(
            WORKLOAD, scale=SCALE, cache=ResultCache(root=cache_root)
        )
        assert not cached
        assert record.records > 0
