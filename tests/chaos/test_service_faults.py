"""Service chaos: dropped connections, dead peers, slow-loris, broker
crash mid-sweep.

Recovery contract: transport faults retry with capped, jittered
backoff and surface as typed errors when the budget runs out; a
slow-loris peer is bounded by the request timeout without blocking
other clients; a SIGKILLed broker restarts and serves completed jobs
from the shared cache, recomputing only what was in flight.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec
from repro.service.client import (
    CircuitBreaker,
    CircuitOpenError,
    RetryBudgetError,
    ServiceClient,
    ServiceError,
)

from tests.service.conftest import live_service  # noqa: F401 - fixture

ECHO = "tests.service.jobs:echo"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))

#: a local port with nothing listening (RFC 2544 benchmark block)
DEAD_URL = "http://127.0.0.1:47"


def fast_client(url, **overrides):
    settings = dict(
        timeout=5.0, backoff=0.01, backoff_cap=0.05, jitter_seed=0
    )
    settings.update(overrides)
    return ServiceClient(url, **settings)


class TestClientRetry:
    def test_dropped_connection_is_retried_transparently(
        self, arm, live_service  # noqa: F811
    ):
        service = live_service()
        arm(FaultSpec(site="client.request", action="drop", nth=1))
        body = fast_client(service.url).submit(
            fn=ECHO, params={"value": 7}, wait=True
        )
        assert body["state"] == "finished"
        assert body["payload"]["value"] == 7
        assert faults.active_injector().arrivals("client.request") == 2

    def test_dead_peer_exhausts_budget_with_typed_error(self):
        client = fast_client(DEAD_URL, max_retries=2)
        with pytest.raises(RetryBudgetError) as info:
            client.submit(fn=ECHO, params={"value": 1})
        assert info.value.attempts == 3
        assert info.value.status == 0
        assert isinstance(info.value.last_error, ServiceError)
        assert "cannot reach" in str(info.value.last_error)

    def test_non_retryable_status_raises_immediately(
        self, live_service  # noqa: F811
    ):
        service = live_service()
        client = fast_client(service.url, max_retries=5)
        with pytest.raises(ServiceError) as info:
            client.submit(fn="os:system", params={})
        assert info.value.status == 403  # no retries burned on a 4xx

    def test_retry_after_is_capped_and_jittered(self):
        client = ServiceClient(
            "http://unused", backoff_cap=2.0, jitter_seed=3
        )
        # A hostile/buggy server sending Retry-After: 9999 must not
        # stall the client for hours.
        delays = [client._retry_delay(1, 9999.0) for _ in range(20)]
        assert all(1.0 <= delay <= 2.0 for delay in delays)
        assert len(set(delays)) > 1  # jittered, not constant

    def test_exponential_backoff_without_server_hint(self):
        client = ServiceClient(
            "http://unused", backoff=0.1, backoff_cap=1.0, jitter_seed=0
        )
        for attempt, ceiling in [(1, 0.1), (2, 0.2), (3, 0.4), (6, 1.0)]:
            delay = client._retry_delay(attempt, None)
            assert ceiling / 2 <= delay <= ceiling


class TestCircuitBreaker:
    def test_repeated_failures_open_the_circuit(self):
        breaker = CircuitBreaker(threshold=2, cooldown=60.0)
        client = fast_client(DEAD_URL, max_retries=0, breaker=breaker)
        for _ in range(2):
            with pytest.raises(RetryBudgetError):
                client.submit(fn=ECHO, params={"value": 1})
        assert breaker.open
        # Third call: no network attempt, typed circuit error.
        with pytest.raises(CircuitOpenError) as info:
            client.submit(fn=ECHO, params={"value": 1})
        assert info.value.remaining > 0

    def test_circuit_half_opens_after_cooldown_and_success_closes(
        self, live_service  # noqa: F811
    ):
        service = live_service()
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        client = fast_client(service.url, max_retries=0, breaker=breaker)
        breaker.record_failure()  # trip it
        assert breaker.open
        time.sleep(0.1)  # cooldown elapses: half-open
        body = client.submit(fn=ECHO, params={"value": 3}, wait=True)
        assert body["state"] == "finished"
        assert not breaker.open  # success closed the circuit


class TestServerFaults:
    def test_server_side_drop_is_survived_by_the_client(
        self, arm, live_service  # noqa: F811
    ):
        service = live_service()
        # The server severs the first connection before reading the
        # request; the client's transport retry resubmits.
        arm(FaultSpec(site="service.request", action="drop", nth=1))
        body = fast_client(service.url).submit(
            fn=ECHO, params={"value": 11}, wait=True
        )
        assert body["state"] == "finished"
        assert body["payload"]["value"] == 11

    def test_slow_loris_gets_408_and_does_not_block_others(
        self, live_service  # noqa: F811
    ):
        service = live_service(request_timeout=0.5)
        loris = socket.create_connection(("127.0.0.1", service.port), 5.0)
        loris.settimeout(10.0)
        try:
            # A request that never completes: no blank line, no body.
            loris.sendall(b"POST /jobs HTTP/1.1\r\nContent-Le")
            # While the loris dangles, a healthy client is served.
            status = fast_client(service.url).status()
            assert status["service"]["draining"] is False
            response = loris.recv(4096)
            assert b"408" in response.split(b"\r\n", 1)[0]
        finally:
            loris.close()

    def test_status_exposes_health_counters(self, live_service):  # noqa: F811
        from repro.runtime.health import health_counter

        service = live_service()
        health_counter("fault.cache.corrupt_artifact").inc()
        status = fast_client(service.url).status()
        assert status["health"]["fault.cache.corrupt_artifact"] >= 1


class TestBrokerCrashMidSweep:
    @pytest.fixture
    def serve(self, tmp_path):
        """Launch ``serve`` subprocesses sharing one cache dir."""
        procs = []
        cache_dir = tmp_path / "shared-cache"

        def launch(plan=None):
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
            )
            if plan is not None:
                env[faults.FAULTS_ENV] = plan.to_json()
            else:
                env.pop(faults.FAULTS_ENV, None)
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.service",
                    "serve",
                    "--port",
                    "0",
                    "--inline",
                    "--quiet",
                    "--allow-fn",
                    "tests.",
                    "--cache-dir",
                    str(cache_dir),
                ],
                env=env,
                cwd=REPO_ROOT,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            procs.append(proc)
            ready = proc.stdout.readline().strip()
            assert ready.startswith("repro.service listening on"), ready
            return proc, ready.rsplit(" ", 1)[-1]

        yield launch
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            proc.stdout.close()
            proc.stderr.close()

    def test_killed_broker_restarts_and_resumes_from_cache(self, serve):
        # The broker hard-crashes on its third admission — SIGKILL/OOM
        # semantics, mid-sweep.
        plan = FaultPlan.of(
            FaultSpec(site="service.broker.submit", action="crash", nth=3)
        )
        proc, url = serve(plan)
        client = fast_client(url, max_retries=1)
        for value in (0, 1):
            body = client.submit(
                fn=ECHO, params={"value": value}, wait=True
            )
            assert body["state"] == "finished"
        with pytest.raises(ServiceError):
            client.submit(fn=ECHO, params={"value": 2}, wait=True)
        assert proc.wait(timeout=10) == faults.CRASH_EXIT_CODE

        # Restart against the same cache: completed jobs are cache
        # hits, only the in-flight job is recomputed.
        proc, url = serve()
        client = fast_client(url)
        statuses = []
        for value in (0, 1, 2):
            body = client.submit(
                fn=ECHO, params={"value": value}, wait=True
            )
            assert body["state"] == "finished"
            assert body["payload"]["value"] == value
            statuses.append(body["status"])
        assert statuses == ["cache-hit", "cache-hit", "submitted"]
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
