"""Worker-level chaos: SIGKILL, hangs, exceptions — at job N, scripted.

Recovery contract: a killed worker is retried with backoff and the
payload is bit-identical to an undisturbed run; a hung worker is
bounded by the timeout watchdog (escalating SIGTERM → SIGKILL); an
exception is a clean typed FAILED outcome.  Nothing wedges the sweep.
"""

from repro.faults import FaultSpec, InjectedFault
from repro.runtime.health import health_snapshot
from repro.runtime.job import Job
from repro.runtime.scheduler import FAILED, OK

ECHO = "tests.chaos.jobs:echo_job"
SLOW_ECHO = "tests.chaos.jobs:slow_echo_job"
STUBBORN = "tests.chaos.jobs:stubborn_hang_job"


def echo_jobs(n):
    return [Job.create(ECHO, label=f"j{i}", value=i) for i in range(n)]


def slow_echo_jobs(n):
    # The kill scenarios need jobs still running when the scripted
    # SIGKILL (sent right after launch) lands; a plain echo can win
    # that race and deliver its result first.
    return [Job.create(SLOW_ECHO, label=f"j{i}", value=i) for i in range(n)]


class TestWorkerKill:
    def test_sigkilled_worker_retries_to_identical_payload(
        self, arm, quiet_runtime, tmp_path
    ):
        jobs = slow_echo_jobs(4)
        baseline = quiet_runtime(
            cache_dir=tmp_path / "baseline", jobs=2
        ).map(jobs)
        assert [o.status for o in baseline] == [OK] * 4

        # SIGKILL the second worker launch — one job dies mid-flight.
        arm(FaultSpec(site="runtime.worker.kill", action="crash", nth=2))
        runtime = quiet_runtime(cache_dir=tmp_path / "chaos", jobs=2)
        outcomes = runtime.map(jobs)
        assert [o.status for o in outcomes] == [OK] * 4
        assert [o.payload for o in outcomes] == [o.payload for o in baseline]
        assert runtime.stats.crash_retries == 1
        health = health_snapshot()
        assert health["fault.worker.crash"] == 1
        assert health["recovery.worker.crash_retried"] == 1

    def test_repeatedly_killed_job_fails_with_typed_error(
        self, arm, quiet_runtime
    ):
        # Kill every launch of the only job: retries exhaust cleanly.
        arm(
            FaultSpec(
                site="runtime.worker.kill", action="crash", nth=1, count=10
            )
        )
        runtime = quiet_runtime(jobs=2, retries=2)
        outcome = runtime.run_one(slow_echo_jobs(1)[0])
        assert outcome.status == FAILED
        assert "worker died" in outcome.error
        assert "retries exhausted" in outcome.error
        assert outcome.attempts == 3
        assert health_snapshot()["fault.worker.crash"] == 3


class TestWorkerHang:
    def test_injected_hang_is_bounded_by_the_timeout(
        self, arm, quiet_runtime
    ):
        # The worker hangs before running the job; the watchdog reaps it.
        arm(
            FaultSpec(
                site="runtime.worker.start", action="hang", arg=60.0
            )
        )
        runtime = quiet_runtime(jobs=2, timeout=0.5, retries=0)
        outcome = runtime.run_one(echo_jobs(1)[0])
        assert outcome.status == FAILED
        assert "timeout" in outcome.error
        assert health_snapshot()["fault.worker.timeout"] == 1

    def test_sigterm_immune_worker_is_sigkill_escalated(self, quiet_runtime):
        runtime = quiet_runtime(
            jobs=2, timeout=0.5, retries=0, kill_grace=0.2
        )
        job = Job.create(STUBBORN, label="stubborn", seconds=60.0)
        outcome = runtime.run_one(job)
        assert outcome.status == FAILED
        assert "timeout" in outcome.error
        health = health_snapshot()
        assert health["fault.worker.timeout"] == 1
        assert health["fault.worker.kill_escalated"] == 1


class TestWorkerException:
    def test_injected_exception_is_a_clean_failed_outcome(
        self, arm, quiet_runtime
    ):
        jobs = echo_jobs(3)
        arm(FaultSpec(site="runtime.job.start", action="raise", nth=2))
        runtime = quiet_runtime(jobs=1, use_cache=False)
        outcomes = runtime.map(jobs)
        assert [o.status for o in outcomes] == [OK, FAILED, OK]
        assert InjectedFault.__name__ in outcomes[1].error

    def test_exception_in_isolated_workers_does_not_kill_the_pool(
        self, arm, quiet_runtime
    ):
        # One process per job, each with its own arrival counter: the
        # nth=1 exception fires in *every* worker — a persistent fault.
        # The pool must report each as FAILED and keep going, not die.
        jobs = echo_jobs(3)
        arm(FaultSpec(site="runtime.job.start", action="raise", nth=1))
        runtime = quiet_runtime(jobs=2, use_cache=False)
        outcomes = runtime.map(jobs)
        assert [o.status for o in outcomes] == [FAILED] * 3
        assert all(InjectedFault.__name__ in o.error for o in outcomes)
