"""Population-sweep chaos: workers die mid-sweep, ``/dev/shm`` stays clean.

The population path adds one piece of cross-process state the ordinary
sweep does not have: the published shared-memory record segment and its
manifest.  The recovery contract is therefore two-sided — the sweep
itself must self-heal exactly like any other job fan-out (killed worker
retried, rows bit-identical to an undisturbed run), *and* the segment
must be released no matter how the sweep ends, success or typed failure.
"""

from json import loads
from pathlib import Path

import pytest

from repro.faults import FaultSpec
from repro.kernels import sweep
from repro.kernels.l1filter import drop_open_records
from repro.kernels.sweep import evaluate_population, record_key
from repro.runtime.health import health_snapshot
from repro.runtime.scheduler import JobError

SCALE = 0.1

#: the stat keys a chaos run must reproduce bit-identically
STAT_KEYS = ("variant", "l1_misses", "l2_accesses", "l2_misses", "migrations")


@pytest.fixture(autouse=True)
def _population_isolation(tmp_path, monkeypatch):
    """Private cache root (workers inherit it) and no leftover records."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    drop_open_records()
    sweep.drop_shared_records()
    yield
    sweep.release_owned()
    sweep.drop_shared_records()
    drop_open_records()


def _segment_artifacts(runtime):
    key = record_key(runtime.cache, "mst", SCALE, None)
    return (
        Path("/dev/shm") / f"rl1f_{key}",
        runtime.cache.root / sweep.SHM_DIR / f"{key}.json",
    )


class TestPopulationWorkerKill:
    def test_killed_worker_retries_and_segment_is_released(
        self, arm, quiet_runtime, tmp_path
    ):
        baseline = evaluate_population("mst", scale=SCALE)

        # SIGKILL the second worker launch: one variant dies mid-replay.
        arm(FaultSpec(site="runtime.worker.kill", action="crash", nth=2))
        runtime = quiet_runtime(cache_dir=tmp_path / "chaos", jobs=2)
        result = evaluate_population("mst", scale=SCALE, runtime=runtime)

        assert runtime.stats.crash_retries == 1
        health = health_snapshot()
        assert health["fault.worker.crash"] == 1
        assert health["recovery.worker.crash_retried"] == 1

        # the retried sweep still resolved one record load total and its
        # rows are bit-identical to the undisturbed serial run
        assert result.shared_record_loads == 1
        assert [
            {key: row[key] for key in STAT_KEYS} for row in result.rows
        ] == [{key: row[key] for key in STAT_KEYS} for row in baseline.rows]

        segment, manifest = _segment_artifacts(runtime)
        assert not segment.exists()
        assert not manifest.exists()

    def test_segment_is_released_when_the_sweep_fails(
        self, arm, quiet_runtime, tmp_path
    ):
        # Kill every launch: retries exhaust, the sweep raises a typed
        # JobError — and the finally-path still unlinks the segment.
        arm(
            FaultSpec(
                site="runtime.worker.kill", action="crash", nth=1, count=50
            )
        )
        runtime = quiet_runtime(cache_dir=tmp_path / "chaos", jobs=2, retries=1)
        with pytest.raises(JobError, match="did not complete"):
            evaluate_population("mst", scale=SCALE, runtime=runtime)

        segment, manifest = _segment_artifacts(runtime)
        assert not segment.exists()
        assert not manifest.exists()
        assert not sweep._OWNED

    def test_crashed_coordinator_manifest_is_taken_over(
        self, quiet_runtime, tmp_path
    ):
        # A coordinator that died without releasing leaves a manifest
        # whose owner pid is dead; the next sweep must take the key over
        # (fresh segment, fresh owner list) rather than attach stale
        # state or fail.
        runtime = quiet_runtime(cache_dir=tmp_path / "chaos", jobs=2)
        _, manifest = _segment_artifacts(runtime)
        manifest.parent.mkdir(parents=True, exist_ok=True)
        manifest.write_text(
            '{"segment": "stale", "owners": [1073741824], "meta": {}}'
        )

        result = evaluate_population("mst", scale=SCALE, runtime=runtime)
        assert result.shared_record_loads == 1
        assert "sidecar" not in result.record_sources

        segment, manifest = _segment_artifacts(runtime)
        assert not segment.exists()
        assert not manifest.exists()
