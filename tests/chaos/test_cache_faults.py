"""Cache chaos: torn artifacts, bit rot, full disks, unwritable roots.

Recovery contract: corruption reads as a miss (quarantine + counter +
recompute, bit-identical payload); write failures degrade the cache to
compute-through — the run's results are never lost or wrong.
"""

import errno

from repro.faults import FaultSpec
from repro.runtime.cache import QUARANTINE_DIR, ResultCache
from repro.runtime.health import health_snapshot
from repro.runtime.job import Job
from repro.runtime.scheduler import CACHED, OK

ECHO = "tests.chaos.jobs:echo_job"


def echo_jobs(n):
    return [Job.create(ECHO, label=f"j{i}", value=i) for i in range(n)]


def quarantined(cache_root):
    return list((cache_root / QUARANTINE_DIR).glob("*.corrupt"))


class TestTornArtifact:
    def test_truncated_artifact_is_quarantined_and_recomputed(
        self, arm, quiet_runtime, tmp_path
    ):
        jobs = echo_jobs(2)
        cache_root = tmp_path / "cache"
        runtime = quiet_runtime(cache_dir=cache_root, jobs=1)
        baseline = runtime.map(jobs)
        assert [o.status for o in baseline] == [OK] * 2

        # Re-publish the first artifact torn (as if a crash mid-write
        # had somehow become visible / the disk lost the tail).
        arm(FaultSpec(site="cache.put.bytes", action="truncate", arg=20))
        runtime.cache.put(jobs[0], baseline[0].payload)

        rerun = quiet_runtime(cache_dir=cache_root, jobs=1)
        outcomes = rerun.map(jobs)
        # Torn artifact: recomputed.  Intact artifact: served.
        assert [o.status for o in outcomes] == [OK, CACHED]
        assert [o.payload for o in outcomes] == [o.payload for o in baseline]
        assert health_snapshot()["fault.cache.corrupt_artifact"] == 1
        assert len(quarantined(cache_root)) == 1

    def test_bitflipped_payload_fails_checksum_and_recomputes(
        self, arm, quiet_runtime, tmp_path, capsys
    ):
        job = echo_jobs(1)[0]
        cache_root = tmp_path / "cache"
        runtime = quiet_runtime(cache_dir=cache_root, jobs=1)
        baseline = runtime.run_one(job)

        arm(FaultSpec(site="cache.put.bytes", action="bitflip", arg=1))
        runtime.cache.put(job, baseline.payload)

        rerun = quiet_runtime(cache_dir=cache_root, jobs=1)
        outcome = rerun.run_one(job)
        # Depending on which bit flipped, the artifact either fails to
        # parse or fails its payload checksum — both must read as a
        # miss, never serve corrupt data.
        assert outcome.status == OK
        assert outcome.payload == baseline.payload
        assert health_snapshot()["fault.cache.corrupt_artifact"] == 1
        assert len(quarantined(cache_root)) == 1
        assert "corrupt artifact" in capsys.readouterr().err


class TestWriteFailure:
    def test_enospc_on_put_degrades_to_compute_through(
        self, arm, quiet_runtime, capsys
    ):
        jobs = echo_jobs(3)
        arm(
            FaultSpec(
                site="cache.put",
                action="oserror",
                arg=errno.ENOSPC,
                nth=1,
                count=99,
            )
        )
        runtime = quiet_runtime(jobs=1)
        outcomes = runtime.map(jobs)
        assert [o.status for o in outcomes] == [OK] * 3
        assert runtime.cache.degraded
        assert health_snapshot()["fault.cache.write_failed"] == 3
        err = capsys.readouterr().err
        assert err.count("compute-through") == 1  # warned once, not 3×

    def test_unwritable_cache_root_still_computes(self, quiet_runtime, tmp_path):
        # A *file* where the cache root should be: every mkdir/write
        # fails with a real OSError, no injection involved.
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("cache root is unusable")
        runtime = quiet_runtime(cache_dir=blocker, jobs=1)
        outcomes = runtime.map(echo_jobs(2))
        assert [o.status for o in outcomes] == [OK] * 2
        assert runtime.cache.degraded
        assert health_snapshot()["fault.cache.write_failed"] == 2

    def test_unreadable_artifact_is_a_miss_not_a_crash(
        self, quiet_runtime, tmp_path
    ):
        job = echo_jobs(1)[0]
        cache_root = tmp_path / "cache"
        runtime = quiet_runtime(cache_dir=cache_root, jobs=1)
        baseline = runtime.run_one(job)
        # Replace the artifact with a directory: read_bytes → EISDIR.
        path = runtime.cache.path_for(job)
        path.unlink()
        path.mkdir()
        assert runtime.cache.get(job) is None
        assert health_snapshot()["fault.cache.read_failed"] == 1
        # And the runtime recomputes to the same payload.
        path.rmdir()
        rerun = quiet_runtime(cache_dir=cache_root, jobs=1)
        outcome = rerun.run_one(job)
        assert outcome.status == OK
        assert outcome.payload == baseline.payload
