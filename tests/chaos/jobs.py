"""Module-level job bodies for the chaos suite (importable by workers)."""

import signal
import time


def echo_job(value):
    return {"value": value, "references": 1}


def slow_echo_job(value, seconds=0.3):
    """``echo_job`` with a window: the worker is guaranteed to still be
    running when an external kill scripted at launch time lands (a
    plain echo can win the race and deliver before the SIGKILL)."""
    time.sleep(seconds)
    return {"value": value, "references": 1}


def stubborn_hang_job(seconds=60.0):
    """Mask SIGTERM, then sleep: only SIGKILL can stop this worker —
    the scenario the watchdog's terminate→kill escalation exists for."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        time.sleep(0.05)
    return {"slept": seconds}
