"""4-way recursive splitting semantics (paper section 3.6)."""

from repro.core.controller import ControllerConfig, MigrationController
from repro.core.sampling import SamplingPolicy
from repro.traces.synthetic import HalfRandom


class TestSubsetEncoding:
    def test_upper_bit_from_x_filter(self):
        c = MigrationController(ControllerConfig.stack_experiment())
        # Drive F_X negative with an odd-hash line (H(1)=1 -> X).
        c.filter_x.update(-100)
        assert c.current_subset() in (2, 3)
        c.filter_x.update(+200)
        assert c.current_subset() in (0, 1)

    def test_lower_bit_from_selected_y_filter(self):
        c = MigrationController(ControllerConfig.stack_experiment())
        assert c.filter_x.sign == 1
        c.filter_y[+1].update(-100)
        assert c.current_subset() == 1
        c.filter_y[-1].update(-100)  # inactive branch: no effect now
        assert c.current_subset() == 1

    def test_x_flip_switches_active_y_branch(self):
        c = MigrationController(ControllerConfig.stack_experiment())
        c.filter_y[+1].update(-100)  # subset 1 while X positive
        c.filter_y[-1].update(+100)  # Y[-1] stays positive
        assert c.current_subset() == 1
        c.filter_x.update(-(1 << 19))  # flip X negative
        assert c.current_subset() == 2  # (negative, Y[-1] positive)


class TestYMechanismRouting:
    def test_even_hash_lines_feed_current_y(self):
        c = MigrationController(ControllerConfig.stack_experiment())
        c.observe(2)  # H=2, even, F_X >= 0 -> Y[+1]
        assert c.mechanism_y[+1].references == 1
        assert c.mechanism_y[-1].references == 0
        c.filter_x.update(-(1 << 19))  # force F_X negative
        c.observe(33)  # H=2 again (33 mod 31 = 2) -> Y[-1]
        assert c.mechanism_y[-1].references == 1

    def test_window_sizes_match_paper(self):
        c = MigrationController(ControllerConfig.stack_experiment())
        assert c.mechanism_x.window_size == 128
        assert c.mechanism_y[+1].window_size == 64
        assert c.mechanism_y[-1].window_size == 64

    def test_shared_affinity_store(self):
        c = MigrationController(ControllerConfig.stack_experiment())
        assert c.mechanism_x.store is c.store
        assert c.mechanism_y[+1].store is c.store
        assert c.mechanism_y[-1].store is c.store


class TestRecursiveSplitQuality:
    def test_four_way_split_of_two_phase_set_uses_both_levels(self):
        """HalfRandom gives X the phase split; Y splits within phases
        only as far as randomness allows — but the X-level split alone
        must be clean (each half maps to subsets with one X sign)."""
        c = MigrationController(ControllerConfig.stack_experiment())
        n, burst = 2000, 300
        last = {}
        for e in HalfRandom(n, burst, seed=8).addresses(500_000):
            last[e] = c.observe(e)
        lower = [last[e] for e in range(n // 2) if e in last]
        upper = [last[e] for e in range(n // 2, n) if e in last]
        # Each half should land overwhelmingly on one side of the X bit.
        lower_hi = sum(1 for s in lower if s >= 2) / len(lower)
        upper_hi = sum(1 for s in upper if s >= 2) / len(upper)
        assert abs(lower_hi - upper_hi) > 0.5  # halves separated by X


class TestTwoWayIgnoresParityRouting:
    def test_two_way_routes_everything_to_x(self):
        c = MigrationController(
            ControllerConfig(num_subsets=2, sampling=SamplingPolicy.full())
        )
        for e in range(64):
            c.observe(e)
        assert c.mechanism_x.references == 64
