"""The 2^depth-way hierarchical splitter (section 6 generalisation)."""

from collections import Counter

import pytest

from repro.core.multiway import HierarchicalConfig, HierarchicalController
from repro.traces.synthetic import Circular


class TestStructure:
    def test_subset_count(self):
        assert HierarchicalController(HierarchicalConfig(depth=1)).num_subsets == 2
        assert HierarchicalController(HierarchicalConfig(depth=3)).num_subsets == 8

    def test_mechanism_count_is_tree_size(self):
        controller = HierarchicalController(HierarchicalConfig(depth=3))
        assert len(controller.mechanisms()) == 7  # 1 + 2 + 4

    def test_window_sizes_halve_per_level(self):
        config = HierarchicalConfig(depth=3, root_window_size=128)
        assert config.window_size_at(0) == 128
        assert config.window_size_at(1) == 64
        assert config.window_size_at(2) == 32

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            HierarchicalConfig(depth=0)
        with pytest.raises(ValueError):
            HierarchicalConfig(depth=7)

    def test_subsets_in_range(self):
        controller = HierarchicalController(HierarchicalConfig(depth=3))
        for e in range(200):
            assert 0 <= controller.observe(e) < 8


class TestSplitting:
    def test_eight_way_split_of_circular(self):
        """Circular(4000) should be carved into 8 usable subsets."""
        controller = HierarchicalController(
            HierarchicalConfig(depth=3, filter_bits=16)
        )
        last = {}
        for e in Circular(4000).addresses(1_500_000):
            last[e] = controller.observe(e)
        sizes = Counter(last.values())
        # All 8 subsets in use, none dominating.
        assert len(sizes) == 8
        assert max(sizes.values()) < 4000 * 0.4
        assert controller.stats.transition_frequency < 0.02

    def test_depth_one_matches_two_way_semantics(self):
        controller = HierarchicalController(
            HierarchicalConfig(depth=1, filter_bits=16, root_window_size=100)
        )
        last = {}
        for e in Circular(1000).addresses(400_000):
            last[e] = controller.observe(e)
        sizes = Counter(last.values())
        assert set(sizes) == {0, 1}
        assert min(sizes.values()) > 300

    def test_l2_filtering_gates_filters(self):
        controller = HierarchicalController(
            HierarchicalConfig(depth=2, l2_filtering=True)
        )
        for e in range(100):
            controller.observe(e, l2_miss=False)
        assert controller.stats.filter_updates == 0
        controller.observe(1, l2_miss=True)
        assert controller.stats.filter_updates == 1
