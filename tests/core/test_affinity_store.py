"""Affinity stores: unbounded table and the finite affinity cache."""

import pytest

from repro.core.affinity_store import AffinityCache, UnboundedAffinityStore


class TestUnboundedStore:
    def test_read_miss_returns_none(self):
        store = UnboundedAffinityStore()
        assert store.read(1) is None
        assert store.misses == 1

    def test_write_then_read(self):
        store = UnboundedAffinityStore()
        store.write(1, 42)
        assert store.read(1) == 42

    def test_overwrite(self):
        store = UnboundedAffinityStore()
        store.write(1, 1)
        store.write(1, 2)
        assert store.read(1) == 2

    def test_counters(self):
        store = UnboundedAffinityStore()
        store.write(1, 0)
        store.read(1)
        store.read(2)
        assert (store.reads, store.writes, store.misses) == (2, 1, 1)

    def test_known_lines(self):
        store = UnboundedAffinityStore()
        store.write(3, 0)
        store.write(5, 0)
        assert sorted(store.known_lines()) == [3, 5]


class TestAffinityCache:
    def test_paper_geometry(self):
        cache = AffinityCache(8192, 4)
        assert cache.num_entries == 8192
        assert cache.ways == 4

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            AffinityCache(8190, 4)  # not divisible into power-of-two sets
        with pytest.raises(ValueError):
            AffinityCache(8192, 0)

    def test_write_read_roundtrip(self):
        cache = AffinityCache(64, 4)
        cache.write(100, -5)
        assert cache.read(100) == -5

    def test_read_miss(self):
        cache = AffinityCache(64, 4)
        assert cache.read(7) is None
        assert cache.misses == 1

    def test_capacity_causes_evictions(self):
        cache = AffinityCache(16, 2)
        for line in range(200):
            cache.write(line, line)
        assert len(cache) <= 16
        assert cache.evictions > 0

    def test_eviction_prefers_older_entries(self):
        """Recently touched entries should survive a stream of fresh
        insertions more often than untouched ones (age-based policy)."""
        cache = AffinityCache(16, 2)
        hot = 12345
        cache.write(hot, 1)
        for line in range(100):
            cache.read(hot)  # keep it young
            cache.write(line, 0)
        assert hot in cache

    def test_overwrite_in_place(self):
        cache = AffinityCache(16, 2)
        cache.write(5, 1)
        cache.write(5, 9)
        assert cache.read(5) == 9
        assert len(cache) == 1

    def test_contains(self):
        cache = AffinityCache(16, 2)
        assert 3 not in cache
        cache.write(3, 0)
        assert 3 in cache
