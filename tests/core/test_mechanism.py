"""The Figure 2 hardware mechanism, including exact equivalence with the
Definition 1 reference implementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.affinity import ReferenceAffinitySplitter
from repro.core.affinity_store import UnboundedAffinityStore
from repro.core.mechanism import SplitMechanism
from repro.traces.synthetic import Circular


def make_mechanism(window=4, bits=16, **kw) -> SplitMechanism:
    return SplitMechanism(window, UnboundedAffinityStore(), affinity_bits=bits, **kw)


class TestBasics:
    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SplitMechanism(0, UnboundedAffinityStore())

    def test_first_reference_affinity_zero(self):
        m = make_mechanism()
        assert m.process(1) == 0

    def test_window_fifo_order(self):
        m = make_mechanism(window=2)
        for e in (1, 2, 3):
            m.process(e)
        assert m.window_lines() == [2, 3]

    def test_fifo_allows_duplicates(self):
        m = make_mechanism(window=3)
        for e in (1, 1, 1):
            m.process(e)
        assert m.window_lines() == [1, 1, 1]

    def test_lru_window_keeps_distinct(self):
        m = make_mechanism(window=3, lru_window=True)
        for e in (1, 2, 1):
            m.process(e)
        assert m.window_lines() == [2, 1]

    def test_affinity_of_unknown_line_is_none(self):
        m = make_mechanism()
        assert m.affinity_of(42) is None

    def test_affinity_of_in_window_line(self):
        m = make_mechanism(window=4)
        m.process(1)
        assert m.affinity_of(1) is not None

    def test_delta_moves_every_reference(self):
        m = make_mechanism()
        for e in range(10):
            m.process(e)
        assert m.delta.value != 0

    def test_saturation_bounds_respected(self):
        m = make_mechanism(window=2, bits=4)  # tiny: saturates fast
        for e in Circular(10).addresses(2000):
            a = m.process(e)
            assert -8 <= a <= 7
        assert -16 <= m.delta.value <= 15  # 5-bit delta


class TestEquivalenceWithDefinition:
    """The postponed-update mechanism (LRU window, wide registers, exact
    window-affinity tracking) must agree with Definition 1 *exactly*."""

    def run_both(self, window, stream):
        reference = ReferenceAffinitySplitter(window)
        mechanism = make_mechanism(
            window=window, bits=56, lru_window=True,
            track_true_window_affinity=True,
        )
        for element in stream:
            reference.reference(element)
            mechanism.process(element)
        return reference, mechanism

    def check_affinities_match(self, reference, mechanism):
        for element, expected in reference.affinity.items():
            assert mechanism.affinity_of(element) == expected, element

    def test_simple_stream(self):
        reference, mechanism = self.run_both(2, [1, 2, 3, 1, 2, 3, 4, 4])
        self.check_affinities_match(reference, mechanism)

    def test_circular(self):
        reference, mechanism = self.run_both(5, Circular(20).addresses(500))
        self.check_affinities_match(reference, mechanism)

    @settings(max_examples=50, deadline=None)
    @given(
        window=st.integers(min_value=1, max_value=6),
        stream=st.lists(st.integers(min_value=0, max_value=10), max_size=150),
    )
    def test_any_stream(self, window, stream):
        reference, mechanism = self.run_both(window, stream)
        self.check_affinities_match(reference, mechanism)
        assert mechanism.window_affinity.value == reference.window_affinity()


class TestWindowAffinityModes:
    def test_literal_register_diverges_from_true_sum(self):
        """The literal Figure 2 register omits the |R|*sign drift, so
        once Δ is non-zero it no longer equals the true Σ A_e (while the
        exact mode always does, per TestEquivalenceWithDefinition)."""
        m = make_mechanism(window=3, bits=40, lru_window=True,
                           track_true_window_affinity=False)
        for e in (1, 2, 3, 4, 5, 1, 2):
            m.process(e)
        true_sum = sum(m.affinity_of(line) for line in set(m.window_lines()))
        assert m.delta.value != 0
        assert m.window_affinity.value != true_sum

    def test_exact_mode_splits_circular_better_than_literal(self):
        """The documented ablation: on Circular the exact mode converges
        to fewer sign runs (less fragmentation) than the literal one."""

        def sign_runs(mechanism, n):
            signs = [(mechanism.affinity_of(e) or 0) >= 0 for e in range(n)]
            return sum(
                1 for i in range(n) if signs[i] != signs[i - 1]
            )

        n = 800
        exact = make_mechanism(window=20, track_true_window_affinity=True)
        literal = make_mechanism(window=20, track_true_window_affinity=False)
        for e in Circular(n).addresses(300_000):
            exact.process(e)
            literal.process(e)
        assert sign_runs(exact, n) <= sign_runs(literal, n)
        assert sign_runs(exact, n) <= 4

    def test_exact_mode_converges_circular_to_optimal(self):
        """The headline reproduction check: Circular(400), |R|=20 ->
         2-piece split, transition frequency ~ 2/N (paper Figure 3)."""
        m = make_mechanism(window=20, bits=16)
        transitions = 0
        previous = None
        n = 200_000
        tail_start = n - 4000
        tail_transitions = 0
        for i, e in enumerate(Circular(400).addresses(n)):
            sign = m.process(e) >= 0
            if previous is not None and sign != previous:
                transitions += 1
                if i >= tail_start:
                    tail_transitions += 1
            previous = sign
        # Tail: ~2 transitions per 400-reference lap, i.e. 20 in 4000.
        assert tail_transitions <= 40
        # Balanced split.
        positive = sum(
            1 for e in range(400) if (m.affinity_of(e) or 0) >= 0
        )
        assert 160 <= positive <= 240

    def test_store_receives_values_on_window_exit(self):
        store = UnboundedAffinityStore()
        m = SplitMechanism(2, store, affinity_bits=16)
        for e in (1, 2, 3):
            m.process(e)
        assert 1 in store  # evicted from the window -> written back
        assert 3 not in store  # still in the window
