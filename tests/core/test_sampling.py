"""Working-set sampling and the mod-31 hardware hash."""

import pytest
from hypothesis import given, strategies as st

from repro.core.sampling import SamplingPolicy, digitwise_mod31, mod_hash


class TestModHash:
    def test_basic(self):
        assert mod_hash(62) == 0
        assert mod_hash(32) == 1

    @given(st.integers(min_value=0, max_value=2**48))
    def test_digitwise_matches_modulo(self, line):
        """The carry-save-adder trick (2^5 ≡ 1 mod 31) is exact."""
        assert digitwise_mod31(line) == line % 31

    def test_digitwise_rejects_negative(self):
        with pytest.raises(ValueError):
            digitwise_mod31(-1)

    def test_all_ones_fixup(self):
        # 31 itself must give 0, not 31.
        assert digitwise_mod31(31) == 0


class TestSamplingPolicy:
    def test_full_samples_everything(self):
        policy = SamplingPolicy.full()
        assert policy.sample_fraction == 1.0
        assert all(policy.is_sampled(line) for line in range(100))

    def test_quarter_is_papers_25_percent(self):
        policy = SamplingPolicy.quarter()
        assert policy.sampled_residues == frozenset(range(8))
        assert policy.sample_fraction == pytest.approx(8 / 31)

    def test_quarter_sampling_selects_by_hash(self):
        policy = SamplingPolicy.quarter()
        assert policy.is_sampled(7)  # H = 7 < 8
        assert not policy.is_sampled(8)  # H = 8
        assert policy.is_sampled(31)  # H = 0

    def test_sampled_fraction_on_uniform_lines(self):
        policy = SamplingPolicy.quarter()
        sampled = sum(policy.is_sampled(line) for line in range(31 * 100))
        assert sampled == 8 * 100

    def test_routing_by_hash_parity(self):
        policy = SamplingPolicy.full()
        assert policy.routes_to_x(1)  # H=1 odd -> X
        assert not policy.routes_to_x(2)  # H=2 even -> Y
        assert not policy.routes_to_x(31)  # H=0 even -> Y

    def test_bad_modulus_rejected(self):
        with pytest.raises(ValueError):
            SamplingPolicy(modulus=1)

    def test_empty_residues_rejected(self):
        with pytest.raises(ValueError):
            SamplingPolicy(modulus=31, sampled_residues=frozenset())

    def test_out_of_range_residue_rejected(self):
        with pytest.raises(ValueError):
            SamplingPolicy(modulus=31, sampled_residues=frozenset({31}))

    def test_stride_streams_not_pathological(self):
        """The prime modulus guarantees every residue appears under any
        stride coprime with 31 — the reason the paper picked 31."""
        policy = SamplingPolicy.quarter()
        for stride in (2, 3, 4, 8, 16, 64, 128):
            lines = [i * stride for i in range(31 * 4)]
            sampled = sum(policy.is_sampled(line) for line in lines)
            fraction = sampled / len(lines)
            assert 0.2 <= fraction <= 0.32, (stride, fraction)
