"""The migration controller: 2-way and 4-way splitting, sampling,
L2 filtering, transition counting."""

import pytest

from repro.core.controller import ControllerConfig, MigrationController
from repro.core.sampling import SamplingPolicy
from repro.traces.synthetic import Circular, HalfRandom, UniformRandom


class TestConfig:
    def test_default_is_stack_experiment(self):
        cfg = ControllerConfig.stack_experiment()
        assert cfg.num_subsets == 4
        assert cfg.filter_bits == 20
        assert cfg.x_window_size == 128
        assert cfg.y_window_size == 64
        assert cfg.affinity_cache_entries is None
        assert not cfg.l2_filtering

    def test_four_core_matches_section_42(self):
        cfg = ControllerConfig.four_core()
        assert cfg.filter_bits == 18
        assert cfg.affinity_cache_entries == 8192
        assert cfg.sampling.sample_fraction == pytest.approx(8 / 31)
        assert cfg.l2_filtering

    def test_invalid_subsets_rejected(self):
        with pytest.raises(ValueError):
            ControllerConfig(num_subsets=3)


class TestTwoWay:
    def test_subsets_in_range(self):
        c = MigrationController(ControllerConfig(num_subsets=2))
        for e in Circular(50).addresses(5000):
            assert c.observe(e) in (0, 1)

    def test_splits_half_random(self):
        """HalfRandom(m): tail transition frequency approaches 1/m."""
        c = MigrationController(
            ControllerConfig(num_subsets=2, x_window_size=50, filter_bits=16)
        )
        behavior = HalfRandom(1000, 100)
        n = 300_000
        t0 = 0
        for i, e in enumerate(behavior.addresses(n)):
            if i == n - 50_000:
                t0 = c.stats.transitions
            c.observe(e)
        tail = (c.stats.transitions - t0) / 50_000
        assert tail < 2.5 / 100  # within 2.5x of the ideal 1/100

    def test_transitions_counted_on_subset_change(self):
        # A narrow filter on a random working set flips often.
        c = MigrationController(ControllerConfig(num_subsets=2, filter_bits=10))
        for e in UniformRandom(100, seed=3).addresses(20_000):
            c.observe(e)
        assert c.stats.transitions > 0

    def test_mechanisms_listing(self):
        c2 = MigrationController(ControllerConfig(num_subsets=2))
        assert len(c2.mechanisms()) == 1
        c4 = MigrationController(ControllerConfig(num_subsets=4))
        assert len(c4.mechanisms()) == 3


class TestFourWay:
    def test_converges_to_four_balanced_subsets_on_circular(self):
        c = MigrationController(ControllerConfig.stack_experiment())
        last = {}
        for e in Circular(4000).addresses(800_000):
            last[e] = c.observe(e)
        from collections import Counter

        sizes = Counter(last.values())
        assert len(sizes) == 4
        assert min(sizes.values()) > 700  # near 1000 each

    def test_observe_returns_pre_update_subset(self):
        c = MigrationController(ControllerConfig.stack_experiment())
        before = c.current_subset()
        first = c.observe(12345)
        assert first == before

    def test_routing_splits_by_hash_parity(self):
        c = MigrationController(ControllerConfig.stack_experiment())
        c.observe(1)  # H=1 odd -> X
        c.observe(2)  # H=2 even -> Y
        assert c.mechanism_x.references == 1
        total_y = sum(m.references for m in c.mechanism_y.values())
        assert total_y == 1


class TestSamplingIntegration:
    def test_unsampled_lines_do_not_touch_mechanisms(self):
        cfg = ControllerConfig(
            num_subsets=2, sampling=SamplingPolicy.quarter()
        )
        c = MigrationController(cfg)
        c.observe(8)  # H=8: not sampled
        assert c.stats.sampled_references == 0
        assert c.mechanism_x.references == 0

    def test_sampled_fraction_recorded(self):
        cfg = ControllerConfig(
            num_subsets=2, sampling=SamplingPolicy.quarter()
        )
        c = MigrationController(cfg)
        for e in range(31 * 10):
            c.observe(e)
        assert c.stats.sampled_references == 8 * 10


class TestL2Filtering:
    def test_filter_only_moves_on_l2_misses(self):
        cfg = ControllerConfig(num_subsets=2, l2_filtering=True)
        c = MigrationController(cfg)
        for e in range(100):
            c.observe(e, l2_miss=False)
        assert c.stats.filter_updates == 0
        c.observe(3, l2_miss=True)
        assert c.stats.filter_updates == 1

    def test_without_l2_filtering_every_reference_updates(self):
        cfg = ControllerConfig(num_subsets=2, l2_filtering=False)
        c = MigrationController(cfg)
        for e in range(100):
            c.observe(e, l2_miss=False)
        assert c.stats.filter_updates == 100

    def test_affinity_state_always_advances(self):
        """L2 filtering gates the filter, not the affinity mechanism."""
        cfg = ControllerConfig(num_subsets=2, l2_filtering=True)
        c = MigrationController(cfg)
        for e in range(50):
            c.observe(e, l2_miss=False)
        assert c.mechanism_x.references == 50


class TestFiniteAffinityCache:
    def test_large_working_set_suppresses_transitions(self):
        """With a small affinity cache, a working set far larger than it
        keeps missing -> A_e forced to 0 -> the filter barely moves (the
        paper's swim/mgrid/mst suppression mechanism)."""
        big = ControllerConfig(
            num_subsets=2,
            filter_bits=18,
            affinity_cache_entries=64,
            affinity_cache_ways=4,
        )
        unlimited = ControllerConfig(num_subsets=2, filter_bits=18)
        suppressed = MigrationController(big)
        free = MigrationController(unlimited)
        for e in Circular(20_000).addresses(200_000):
            suppressed.observe(e)
            free.observe(e)
        assert suppressed.stats.transitions <= free.stats.transitions

    def test_affinity_cache_wired_in(self):
        from repro.core.affinity_store import AffinityCache

        c = MigrationController(ControllerConfig.four_core())
        assert isinstance(c.store, AffinityCache)


class TestStats:
    def test_transition_frequency(self):
        c = MigrationController(ControllerConfig(num_subsets=2))
        assert c.stats.transition_frequency == 0.0
        for e in UniformRandom(50, seed=1).addresses(5000):
            c.observe(e)
        assert 0.0 <= c.stats.transition_frequency <= 1.0
