"""The transition filter (section 3.4)."""

from repro.core.transition_filter import TransitionFilter


class TestSubsetDecision:
    def test_starts_in_subset_zero(self):
        # F = 0, sign(0) = +1 -> subset 0.
        assert TransitionFilter(8).subset == 0

    def test_negative_filter_is_subset_one(self):
        f = TransitionFilter(8)
        f.update(-10)
        assert f.subset == 1
        assert f.sign == -1

    def test_update_returns_subset(self):
        f = TransitionFilter(8)
        assert f.update(-1) == 1
        assert f.update(+2) == 0

    def test_sign_changes_counted(self):
        f = TransitionFilter(8)
        f.update(-1)
        f.update(+2)
        f.update(+1)
        assert f.sign_changes == 2

    def test_reset(self):
        f = TransitionFilter(8)
        f.update(-5)
        f.reset()
        assert f.value == 0
        assert f.subset == 0


class TestHysteresis:
    def test_filter_delays_transitions(self):
        """A wide filter absorbs small opposing affinities: the paper's
        delay of ~2^(f-b) references before an actual transition."""
        f = TransitionFilter(12)  # range ±2048
        f.update(2000)  # strongly positive
        flips = 0
        for _ in range(3):
            if f.update(-500) == 1:
                flips += 1
        assert flips == 0  # 2000 - 1500 still positive
        assert f.update(-600) == 1  # now crosses zero

    def test_saturation_bounds_swing_time(self):
        """Saturation caps how long the filter can 'remember': after
        saturating positive, exactly ceil(max/|a|) + 1 negative updates
        of magnitude |a| flip it."""
        f = TransitionFilter(10)  # max 511
        for _ in range(100):
            f.update(400)  # saturates at 511
        steps = 0
        while f.subset == 0:
            f.update(-400)
            steps += 1
        assert steps == 2  # 511 -> 111 -> -289

    def test_doubling_width_doubles_swing(self):
        """One extra filter bit doubles the full swing (the paper's
        frequency-halving argument)."""

        def swing_steps(bits):
            f = TransitionFilter(bits)
            for _ in range(10_000):
                f.update(1 << 15)  # saturated positive affinity
            steps = 0
            while f.subset == 0:
                f.update(-(1 << 15))
                steps += 1
            return steps

        assert swing_steps(20) == 2 * swing_steps(19)
