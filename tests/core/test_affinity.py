"""The reference affinity algorithm (Definition 1, simulated directly)."""

import pytest

from repro.core.affinity import ReferenceAffinitySplitter
from repro.traces.synthetic import Circular, HalfRandom


class TestMechanics:
    def test_first_reference_starts_at_zero_then_updates(self):
        s = ReferenceAffinitySplitter(window_size=2)
        step = s.reference(7)
        # A_7 = 0 initially; 7 is in R; A_R = 0 -> sign +1 -> A_7 = +1.
        assert step == 1
        assert s.affinity[7] == 1

    def test_out_of_window_elements_move_opposite(self):
        s = ReferenceAffinitySplitter(window_size=1)
        s.reference(1)  # A_1 = +1
        s.reference(2)  # 1 leaves R; A_R = A_2 = 0 -> +1; A_1 -= 1
        assert s.affinity[1] == 0
        assert s.affinity[2] == 1

    def test_window_is_distinct_lru(self):
        s = ReferenceAffinitySplitter(window_size=2)
        for e in (1, 2, 1, 3):
            s.reference(e)
        # LRU eviction order: 2 was evicted (1 was refreshed).
        assert s.window == [1, 3]

    def test_window_size_respected(self):
        s = ReferenceAffinitySplitter(window_size=3)
        for e in range(10):
            s.reference(e)
        assert len(s.window) == 3

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ReferenceAffinitySplitter(window_size=0)

    def test_window_affinity_sums_members(self):
        s = ReferenceAffinitySplitter(window_size=2)
        s.run([1, 2])
        assert s.window_affinity() == s.affinity[1] + s.affinity[2]


class TestSplittingBehaviour:
    def test_balanced_split_on_circular(self):
        """The negative feedback balances subset sizes (section 3.2)."""
        s = ReferenceAffinitySplitter(window_size=10)
        s.run(Circular(100).addresses(20_000))
        assert 0.35 <= s.balance() <= 0.65

    def test_half_random_groups_get_same_sign(self):
        """Synchronous elements end up in the same subset (positive
        feedback): each HalfRandom half should be nearly sign-pure."""
        n, burst = 200, 40
        s = ReferenceAffinitySplitter(window_size=40)
        s.run(HalfRandom(n, burst, seed=5).addresses(40_000))
        lower_positive = sum(1 for e in range(n // 2) if s.affinity.get(e, 0) >= 0)
        upper_positive = sum(
            1 for e in range(n // 2, n) if s.affinity.get(e, 0) >= 0
        )
        purity_lower = max(lower_positive, n // 2 - lower_positive) / (n // 2)
        purity_upper = max(upper_positive, n // 2 - upper_positive) / (n // 2)
        assert purity_lower > 0.9
        assert purity_upper > 0.9
        # And the two halves took opposite signs.
        assert (lower_positive > n // 4) != (upper_positive > n // 4)

    def test_subset_of_unseen_element_defaults_positive(self):
        s = ReferenceAffinitySplitter(window_size=2)
        assert s.subset_of(999) == 0

    def test_split_partitions_seen_elements(self):
        s = ReferenceAffinitySplitter(window_size=5)
        s.run(Circular(40).addresses(4000))
        positive, negative = s.split()
        assert positive | negative == set(range(40))
        assert not positive & negative

    def test_empty_balance_is_half(self):
        assert ReferenceAffinitySplitter(window_size=2).balance() == 0.5
