"""Protocol compliance: everything that claims to be a trace source or
line stream satisfies the structural interfaces."""

from repro.olden.heap import TracedHeap
from repro.traces.spec_models import spec_model
from repro.traces.synthetic import (
    Circular,
    HalfRandom,
    PermutationCycle,
    SequenceBehavior,
    Stride,
    UniformRandom,
)
from repro.traces.trace import Access, LineStream, TraceSource


class TestLineStreamProtocol:
    def test_all_synthetic_behaviours_conform(self):
        behaviors = [
            Circular(4),
            HalfRandom(4, 2),
            UniformRandom(4),
            Stride(4),
            PermutationCycle(4),
            SequenceBehavior([0, 1]),
        ]
        for behavior in behaviors:
            assert isinstance(behavior, LineStream), type(behavior)
            assert behavior.num_lines > 0
            assert all(
                0 <= e < behavior.num_lines for e in behavior.addresses(20)
            )


class TestTraceSourceProtocol:
    def test_spec_model_conforms(self):
        model = spec_model("179.art", length=100)
        assert isinstance(model, TraceSource)
        accesses = list(model.accesses())
        assert len(accesses) == 100
        assert all(isinstance(a, Access) for a in accesses)

    def test_recorded_trace_conforms(self):
        heap = TracedHeap("t")
        obj = heap.allocate(["x"])
        obj.set("x", 1)
        trace = heap.finish()
        assert isinstance(trace, TraceSource)
        assert all(isinstance(a, Access) for a in trace.accesses())
