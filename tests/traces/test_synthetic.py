"""Synthetic working-set behaviours."""

import itertools

import pytest

from repro.traces.synthetic import (
    Circular,
    HalfRandom,
    InterleavedStreams,
    PermutationCycle,
    PhaseAlternating,
    SequenceBehavior,
    Stride,
    UniformRandom,
    behavior_trace,
)
from repro.traces.trace import AccessKind


class TestCircular:
    def test_wraps(self):
        assert list(Circular(3).addresses(7)) == [0, 1, 2, 0, 1, 2, 0]

    def test_start_offset(self):
        assert list(Circular(3, start=2).addresses(4)) == [2, 0, 1, 2]

    def test_invalid(self):
        with pytest.raises(ValueError):
            Circular(0)
        with pytest.raises(ValueError):
            Circular(3, start=3)


class TestHalfRandom:
    def test_alternates_halves(self):
        stream = list(HalfRandom(100, 10, seed=0).addresses(40))
        assert all(e < 50 for e in stream[:10])
        assert all(e >= 50 for e in stream[10:20])
        assert all(e < 50 for e in stream[20:30])

    def test_deterministic(self):
        a = list(HalfRandom(100, 10, seed=1).addresses(50))
        b = list(HalfRandom(100, 10, seed=1).addresses(50))
        assert a == b

    def test_odd_size_rejected(self):
        with pytest.raises(ValueError):
            HalfRandom(101, 10)

    def test_partial_burst_at_end(self):
        assert len(list(HalfRandom(100, 30).addresses(45))) == 45


class TestUniformRandom:
    def test_range(self):
        assert all(0 <= e < 50 for e in UniformRandom(50).addresses(1000))

    def test_covers_set(self):
        seen = set(UniformRandom(20, seed=0).addresses(2000))
        assert seen == set(range(20))


class TestStride:
    def test_unit_stride_is_circular(self):
        assert list(Stride(4, 1).addresses(6)) == [0, 1, 2, 3, 0, 1]

    def test_stride_two(self):
        assert list(Stride(8, 2).addresses(5)) == [0, 2, 4, 6, 0]

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            Stride(8, 0)


class TestPermutationCycle:
    def test_is_a_permutation(self):
        stream = list(PermutationCycle(16, seed=0).addresses(16))
        assert sorted(stream) == list(range(16))

    def test_repeats_identically(self):
        stream = list(PermutationCycle(16, seed=0).addresses(32))
        assert stream[:16] == stream[16:]

    def test_different_seeds_differ(self):
        a = list(PermutationCycle(64, seed=0).addresses(64))
        b = list(PermutationCycle(64, seed=1).addresses(64))
        assert a != b


class TestSequenceBehavior:
    def test_cycles(self):
        s = SequenceBehavior([3, 1, 4])
        assert list(s.addresses(5)) == [3, 1, 4, 3, 1]

    def test_num_lines(self):
        assert SequenceBehavior([3, 1, 4]).num_lines == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SequenceBehavior([])


class TestPhaseAlternating:
    def test_disjoint_ranges(self):
        phases = PhaseAlternating(
            [(Circular(4), 4), (Circular(4), 4)], disjoint=True
        )
        stream = list(phases.addresses(8))
        assert stream == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_shared_ranges(self):
        phases = PhaseAlternating(
            [(Circular(4), 2), (Circular(4), 2)], disjoint=False
        )
        stream = list(phases.addresses(4))
        assert all(e < 4 for e in stream)

    def test_invalid_phase_length(self):
        with pytest.raises(ValueError):
            PhaseAlternating([(Circular(4), 0)])


class TestInterleavedStreams:
    def test_disjoint_offsets(self):
        inter = InterleavedStreams([Circular(4), Circular(4)], seed=0)
        stream = list(inter.addresses(100))
        assert any(e < 4 for e in stream)
        assert any(e >= 4 for e in stream)
        assert all(e < 8 for e in stream)

    def test_weights_respected(self):
        inter = InterleavedStreams(
            [Circular(4), Circular(4)], weights=[9, 1], seed=0
        )
        stream = list(inter.addresses(2000))
        first = sum(1 for e in stream if e < 4)
        assert first > 1500

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            InterleavedStreams([Circular(4)], weights=[1, 2])
        with pytest.raises(ValueError):
            InterleavedStreams([Circular(4)], weights=[0])


class TestBehaviorTrace:
    def test_addresses_and_instructions(self):
        trace = list(behavior_trace(Circular(4), 6, line_size=64,
                                    instructions_per_access=3))
        assert [a.address for a in trace] == [0, 64, 128, 192, 0, 64]
        assert [a.instruction for a in trace] == [0, 3, 6, 9, 12, 15]
        assert all(a.kind is AccessKind.LOAD for a in trace)

    def test_invalid_gap_rejected(self):
        with pytest.raises(ValueError):
            list(behavior_trace(Circular(4), 2, instructions_per_access=0))
