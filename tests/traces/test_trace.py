"""The trace model."""

from repro.traces.trace import (
    Access,
    AccessKind,
    TraceStats,
    line_address,
    measure_trace,
)


class TestAccess:
    def test_defaults(self):
        a = Access(128)
        assert a.kind is AccessKind.LOAD
        assert a.instruction == 0

    def test_is_write(self):
        assert Access(0, AccessKind.STORE).is_write
        assert not Access(0, AccessKind.LOAD).is_write

    def test_is_fetch(self):
        assert Access(0, AccessKind.FETCH).is_fetch
        assert not Access(0, AccessKind.STORE).is_fetch


class TestLineAddress:
    def test_divides_by_line_size(self):
        assert line_address(0, 64) == 0
        assert line_address(63, 64) == 0
        assert line_address(64, 64) == 1
        assert line_address(130, 64) == 2


class TestTraceStats:
    def test_counts_by_kind(self):
        stats = TraceStats()
        stats.record(Access(0, AccessKind.FETCH, 0))
        stats.record(Access(64, AccessKind.LOAD, 1))
        stats.record(Access(64, AccessKind.STORE, 2))
        assert (stats.fetches, stats.loads, stats.stores) == (1, 1, 1)
        assert stats.accesses == 3

    def test_distinct_lines(self):
        stats = TraceStats()
        for address in (0, 32, 64, 64):
            stats.record(Access(address, AccessKind.LOAD, 0))
        assert stats.distinct_lines == 2

    def test_instruction_high_watermark(self):
        stats = TraceStats()
        stats.record(Access(0, AccessKind.LOAD, 41))
        assert stats.instructions == 42

    def test_measure_trace(self):
        trace = [Access(i * 64, AccessKind.LOAD, i) for i in range(10)]
        stats = measure_trace(trace)
        assert stats.accesses == 10
        assert stats.distinct_lines == 10
        assert stats.footprint_bytes == 640
