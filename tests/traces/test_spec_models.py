"""Calibrated SPEC-like workload models."""

import pytest

from repro.traces.spec_models import (
    LINES_PER_MB,
    SpecModel,
    spec_model,
    spec_model_names,
)
from repro.traces.trace import AccessKind


class TestRegistry:
    def test_thirteen_benchmarks(self):
        names = spec_model_names()
        assert len(names) == 13
        assert names[0] == "164.gzip"
        assert "179.art" in names
        assert "300.twolf" in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            spec_model("999.nope")

    def test_length_override(self):
        model = spec_model("179.art", length=5000)
        assert sum(1 for _ in model.accesses()) == 5000


class TestTraceProperties:
    def test_deterministic_replay(self):
        a = [x.address for x in spec_model("181.mcf", length=3000).accesses()]
        b = [x.address for x in spec_model("181.mcf", length=3000).accesses()]
        assert a == b

    def test_instructions_monotone(self):
        last = -1
        for access in spec_model("176.gcc", length=3000).accesses():
            assert access.instruction >= last
            last = access.instruction

    def test_instruction_rate_matches_config(self):
        model = spec_model("164.gzip", length=20_000)
        accesses = list(model.accesses())
        rate = accesses[-1].instruction / len(accesses)
        assert rate == pytest.approx(
            model.config.instructions_per_access, rel=0.1
        )

    def test_components_use_disjoint_regions(self):
        model = spec_model("164.gzip", length=50_000)
        lines = {a.address // 64 for a in model.accesses()}
        # Two components: a 2.5 MB region then a 448 KB region at a
        # 3 MB-aligned base.
        region_starts = {line // (3 * LINES_PER_MB) for line in lines}
        assert len(region_starts) >= 1  # sanity: addresses are grouped
        assert max(lines) >= 3 * LINES_PER_MB  # second region is offset

    def test_fetch_heavy_benchmarks_emit_fetches(self):
        kinds = {
            a.kind for a in spec_model("186.crafty", length=5000).accesses()
        }
        assert AccessKind.FETCH in kinds

    def test_store_fraction_roughly_respected(self):
        model = spec_model("171.swim", length=30_000)
        accesses = list(model.accesses())
        stores = sum(1 for a in accesses if a.kind is AccessKind.STORE)
        assert stores / len(accesses) == pytest.approx(0.25, abs=0.05)


class TestCalibrationShapes:
    def test_art_is_mostly_circular(self):
        """art's dominant component revisits lines in a fixed cycle."""
        model = spec_model("179.art", length=100_000)
        big_region = [
            a.address // 64
            for a in model.accesses()
            if a.address // 64 < LINES_PER_MB * 2
        ]
        # A circular sweep is monotone modulo wraparound.
        increasing = sum(
            1 for x, y in zip(big_region, big_region[1:]) if y > x
        )
        assert increasing / len(big_region) > 0.95

    def test_footprints_ordered_by_regime(self):
        """twolf (fits one L2) < art (fits 4xL2) < swim (exceeds 4xL2)."""
        twolf = spec_model("300.twolf").footprint_lines
        art = spec_model("179.art").footprint_lines
        swim = spec_model("171.swim").footprint_lines
        assert twolf < 8192  # < 512 KB
        assert 8192 < art < 32768  # between 512 KB and 2 MB
        assert swim > 32768  # > 2 MB
