"""Trace file I/O."""

import numpy as np
import pytest

from repro.traces.file_format import FileTrace, load_trace, save_trace
from repro.traces.synthetic import Circular, behavior_trace
from repro.traces.trace import AccessKind


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        path = tmp_path / "t.npz"
        original = list(behavior_trace(Circular(50), 500))
        count = save_trace(path, original)
        assert count == 500
        loaded = load_trace(path)
        assert list(loaded.accesses()) == original

    def test_replayable(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, behavior_trace(Circular(10), 50))
        trace = load_trace(path)
        assert list(trace.accesses()) == list(trace.accesses())

    def test_metadata(self, tmp_path):
        path = tmp_path / "mytrace.npz"
        save_trace(path, behavior_trace(Circular(10), 50))
        trace = load_trace(path)
        assert len(trace) == 50
        assert trace.name == "mytrace"
        assert trace.instruction_count > 0

    def test_kinds_preserved(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(
            path,
            behavior_trace(Circular(10), 20, kind=AccessKind.STORE),
        )
        assert all(
            a.kind is AccessKind.STORE for a in load_trace(path).accesses()
        )

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "t.npz"
        assert save_trace(path, []) == 0
        trace = load_trace(path)
        assert len(trace) == 0
        assert trace.instruction_count == 0


class TestValidation:
    def test_version_check(self, tmp_path):
        path = tmp_path / "t.npz"
        np.savez_compressed(
            path,
            version=np.int64(99),
            addresses=np.zeros(0, dtype=np.int64),
            kinds=np.zeros(0, dtype=np.int8),
            instructions=np.zeros(0, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            load_trace(path)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            FileTrace(
                "x",
                np.zeros(2, dtype=np.int64),
                np.zeros(1, dtype=np.int8),
                np.zeros(2, dtype=np.int64),
            )

    def test_file_trace_is_trace_source(self, tmp_path):
        from repro.traces.trace import TraceSource

        path = tmp_path / "t.npz"
        save_trace(path, behavior_trace(Circular(4), 8))
        assert isinstance(load_trace(path), TraceSource)
