"""L1 front-end filters."""

from repro.traces.filters import L1Filter, L1FilterConfig
from repro.traces.trace import Access, AccessKind


def loads(addresses, start_instruction=0):
    return [
        Access(a, AccessKind.LOAD, start_instruction + i)
        for i, a in enumerate(addresses)
    ]


class TestFiltering:
    def test_first_touch_misses(self):
        f = L1Filter()
        out = list(f.filter(loads([0])))
        assert len(out) == 1
        assert out[0].line == 0

    def test_hit_is_filtered_out(self):
        f = L1Filter()
        out = list(f.filter(loads([0, 0, 0])))
        assert len(out) == 1

    def test_capacity_miss_passes_through(self):
        # 16 KB fully-assoc = 256 lines; a 300-line circular always misses.
        f = L1Filter()
        trace = loads([i * 64 for i in range(300)] * 2)
        out = list(f.filter(trace))
        assert len(out) == 600

    def test_fetches_use_il1(self):
        f = L1Filter()
        trace = [Access(0, AccessKind.FETCH, 0), Access(0, AccessKind.LOAD, 1)]
        out = list(f.filter(trace))
        # The load misses too: IL1 and DL1 are separate caches.
        assert len(out) == 2
        assert f.il1_misses == 1
        assert f.dl1_misses == 1

    def test_instruction_watermark(self):
        f = L1Filter()
        list(f.filter(loads([0, 64], start_instruction=10)))
        assert f.instructions == 12

    def test_counts(self):
        f = L1Filter()
        list(f.filter(loads([0, 0, 64])))
        assert f.accesses == 3
        assert f.l1_misses == 2


class TestStorePolicy:
    def test_section41_stores_allocate(self):
        """Default (section 4.1): stores behave as loads."""
        f = L1Filter(L1FilterConfig(store_allocate=True))
        trace = [
            Access(0, AccessKind.STORE, 0),
            Access(0, AccessKind.LOAD, 1),
        ]
        out = list(f.filter(trace))
        assert len(out) == 1  # the load hits the allocated line

    def test_section42_stores_do_not_allocate(self):
        f = L1Filter(L1FilterConfig(store_allocate=False))
        trace = [
            Access(0, AccessKind.STORE, 0),
            Access(0, AccessKind.LOAD, 1),
        ]
        out = list(f.filter(trace))
        assert len(out) == 2  # store missed without allocating

    def test_store_miss_reference_is_marked_write(self):
        f = L1Filter()
        out = list(f.filter([Access(0, AccessKind.STORE, 0)]))
        assert out[0].is_write


class TestSetAssociativeOption:
    def test_ways_option_builds_set_assoc(self):
        from repro.caches.set_assoc import SetAssociativeCache

        f = L1Filter(L1FilterConfig(ways=4))
        assert isinstance(f.dl1, SetAssociativeCache)

    def test_fully_assoc_default(self):
        from repro.caches.fully_assoc import FullyAssociativeCache

        f = L1Filter()
        assert isinstance(f.dl1, FullyAssociativeCache)
