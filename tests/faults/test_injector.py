"""FaultInjector: deterministic arrivals, actions, and corruption."""

import errno
import json
import os
import subprocess
import sys

import pytest

from repro import faults
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedDrop,
    InjectedFault,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


@pytest.fixture(autouse=True)
def _disarmed():
    faults.uninstall()
    yield
    faults.uninstall()


class TestArrivalCounting:
    def test_fire_counts_and_triggers_on_nth(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="s", action="raise", nth=3))
        )
        injector.fire("s")
        injector.fire("s")
        with pytest.raises(InjectedFault):
            injector.fire("s")
        injector.fire("s")  # past the window: inert again
        assert injector.arrivals("s") == 4

    def test_sites_count_independently(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="a", action="raise", nth=2))
        )
        injector.fire("b")
        injector.fire("a")
        with pytest.raises(InjectedFault):
            injector.fire("a")

    def test_armed_reports_without_executing(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="s", action="crash", nth=2))
        )
        assert not injector.armed("s")
        assert injector.armed("s")  # would have been os._exit if executed
        assert not injector.armed("s")


class TestControlActions:
    def test_oserror_defaults_to_enospc(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="s", action="oserror"))
        )
        with pytest.raises(OSError) as info:
            injector.fire("s")
        assert info.value.errno == errno.ENOSPC

    def test_oserror_arg_picks_the_errno(self):
        injector = FaultInjector(
            FaultPlan.of(
                FaultSpec(site="s", action="oserror", arg=errno.EROFS)
            )
        )
        with pytest.raises(OSError) as info:
            injector.fire("s")
        assert info.value.errno == errno.EROFS

    def test_drop_is_a_connection_reset(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="s", action="drop"))
        )
        with pytest.raises(ConnectionResetError):
            injector.fire("s")
        with pytest.raises(InjectedDrop):
            FaultInjector(
                FaultPlan.of(FaultSpec(site="s", action="drop"))
            ).fire("s")


class TestDataActions:
    def test_truncate_shortens(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="s", action="truncate"))
        )
        data = b"x" * 100
        assert len(injector.mutate("s", data)) < len(data)

    def test_truncate_arg_keeps_exact_prefix(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="s", action="truncate", arg=7))
        )
        assert injector.mutate("s", b"0123456789") == b"0123456"

    def test_bitflip_changes_exactly_one_bit(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="s", action="bitflip"))
        )
        data = bytes(32)
        flipped = injector.mutate("s", data)
        assert len(flipped) == len(data)
        assert sum(bin(b).count("1") for b in flipped) == 1

    def test_same_plan_corrupts_identically(self):
        plan = FaultPlan.of(
            FaultSpec(site="s", action="bitflip", arg=4), seed=7
        )
        data = bytes(range(256))
        first = FaultInjector(plan).mutate("s", data)
        second = FaultInjector(plan).mutate("s", data)
        assert first == second != data

    def test_corrupt_file_mutates_in_place(self, tmp_path):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="s", action="truncate", arg=3))
        )
        target = tmp_path / "artifact.bin"
        target.write_bytes(b"0123456789")
        injector.corrupt_file("s", target)
        assert target.read_bytes() == b"012"

    def test_unarmed_hooks_are_pass_through(self, tmp_path):
        injector = FaultInjector(FaultPlan.of())
        assert injector.mutate("s", b"data") == b"data"
        target = tmp_path / "artifact.bin"
        target.write_bytes(b"data")
        injector.corrupt_file("s", target)
        assert target.read_bytes() == b"data"


class TestGlobalInstall:
    def test_module_hooks_inert_without_a_plan(self):
        faults.fire("anything")
        assert faults.mutate("anything", b"data") == b"data"
        assert not faults.armed("anything")
        assert faults.active_injector() is None

    def test_install_arms_process_and_environment(self):
        plan = FaultPlan.of(FaultSpec(site="s", action="raise"))
        faults.install(plan)
        assert os.environ[faults.FAULTS_ENV] == plan.to_json()
        with pytest.raises(InjectedFault):
            faults.fire("s")
        faults.uninstall()
        assert faults.FAULTS_ENV not in os.environ
        faults.fire("s")  # disarmed: inert

    def test_child_process_resolves_plan_from_environment(self):
        plan = FaultPlan.of(FaultSpec(site="child.site", action="raise"))
        env = dict(os.environ)
        env[faults.FAULTS_ENV] = plan.to_json()
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH", "")]
        )
        script = (
            "from repro import faults\n"
            "from repro.faults import InjectedFault\n"
            "try:\n"
            "    faults.fire('child.site')\n"
            "    print('missed')\n"
            "except InjectedFault:\n"
            "    print('fired')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == "fired"

    def test_invalid_environment_plan_is_ignored_with_warning(self):
        env = dict(os.environ)
        env[faults.FAULTS_ENV] = "{broken json"
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH", "")]
        )
        script = (
            "from repro import faults\n"
            "faults.fire('anything')\n"
            "print('survived')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == "survived"
        assert "ignoring invalid" in result.stderr

    def test_crash_action_hard_kills_a_process(self):
        plan = FaultPlan.of(FaultSpec(site="boom", action="crash"))
        env = dict(os.environ)
        env[faults.FAULTS_ENV] = plan.to_json()
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH", "")]
        )
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro import faults; faults.fire('boom'); print('alive')",
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert result.returncode == faults.CRASH_EXIT_CODE
        assert "alive" not in result.stdout


def test_plan_json_is_compact_single_line():
    plan = FaultPlan.of(
        FaultSpec(site="s", action="bitflip", nth=2, count=3, arg=1), seed=9
    )
    body = plan.to_json()
    assert "\n" not in body
    assert json.loads(body)["seed"] == 9
