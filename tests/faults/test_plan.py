"""FaultSpec/FaultPlan: validation, arrival windows, serialisation."""

import pytest

from repro.faults import FaultPlan, FaultSpec


class TestFaultSpec:
    def test_covers_its_arrival_window(self):
        spec = FaultSpec(site="cache.put", action="raise", nth=3, count=2)
        assert [spec.covers(n) for n in range(1, 7)] == [
            False,
            False,
            True,
            True,
            False,
            False,
        ]

    def test_defaults_fire_on_first_arrival_only(self):
        spec = FaultSpec(site="cache.put", action="raise")
        assert spec.covers(1)
        assert not spec.covers(2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"site": "", "action": "raise"},
            {"site": "x", "action": "meteor"},
            {"site": "x", "action": "raise", "nth": 0},
            {"site": "x", "action": "raise", "count": 0},
        ],
    )
    def test_invalid_specs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan.of(
            FaultSpec(site="runtime.worker.kill", action="crash", nth=2),
            FaultSpec(site="cache.put.bytes", action="bitflip", arg=3),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_for_site_filters(self):
        kill = FaultSpec(site="a", action="crash")
        flip = FaultSpec(site="b", action="bitflip")
        plan = FaultPlan.of(kill, flip)
        assert plan.for_site("a") == (kill,)
        assert plan.for_site("b") == (flip,)
        assert plan.for_site("c") == ()

    @pytest.mark.parametrize("body", ["not json", "[]", '{"specs": 3}'])
    def test_invalid_json_raises_value_error(self, body):
        with pytest.raises(ValueError):
            FaultPlan.from_json(body)
