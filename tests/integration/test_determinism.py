"""Determinism: every simulation is exactly reproducible run-to-run.

Reproducibility is a hard requirement for the experiment harness — the
EXPERIMENTS.md numbers must be regenerable bit-for-bit."""

from repro.caches.hierarchy import CoreCacheConfig, SingleCoreHierarchy
from repro.core.controller import ControllerConfig, MigrationController
from repro.experiments.workloads import workload
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.traces.synthetic import UniformRandom, behavior_trace


SMALL = CoreCacheConfig(
    il1_bytes=1024, dl1_bytes=1024, l1_ways=4, l2_bytes=8 * 1024
)


def chip_fingerprint(trace) -> tuple:
    controller = ControllerConfig(
        num_subsets=4, filter_bits=12, x_window_size=16, y_window_size=8
    )
    chip = MultiCoreChip(
        ChipConfig(num_cores=4, caches=SMALL, controller=controller)
    )
    chip.run(trace)
    s = chip.stats
    return (s.l1_misses, s.l2_misses, s.migrations, chip.active_core)


class TestDeterminism:
    def test_chip_run_is_deterministic(self):
        make = lambda: behavior_trace(UniformRandom(300, seed=9), 60_000)
        assert chip_fingerprint(make()) == chip_fingerprint(make())

    def test_controller_is_deterministic(self):
        def run():
            c = MigrationController(ControllerConfig.four_core())
            for e in UniformRandom(500, seed=4).addresses(50_000):
                c.observe(e)
            return (c.stats.transitions, c.stats.filter_updates)

        assert run() == run()

    def test_workload_traces_are_deterministic(self):
        for name in ("181.mcf", "bisort"):
            spec = workload(name, scale=0.02)
            a = [x.address for x in spec.accesses()][:2000]
            b = [x.address for x in spec.accesses()][:2000]
            assert a == b, name

    def test_hierarchy_is_deterministic(self):
        def run():
            h = SingleCoreHierarchy(SMALL)
            for access in behavior_trace(UniformRandom(300, seed=9), 40_000):
                h.access(access)
            return (h.stats.l1_misses, h.stats.l2_misses)

        assert run() == run()
