"""Satellite acceptance smoke: a parallel ``run_all --obs`` sweep must
produce ONE merged Perfetto trace in which every job span is causally
linked across process boundaries — including when a worker is
crash-killed mid-sweep and the job is retried in a fresh process."""

import json

from repro import faults
from repro.experiments.run_all import main as run_all_main
from repro.faults import FaultPlan, FaultSpec
from repro.runtime.health import reset_health

#: the two cheapest Olden workloads, scaled way down: enough to fan
#: out over two worker processes without making the suite crawl
RUN_ARGS = [
    "--only",
    "table2",
    "--workloads",
    "mst",
    "bh",
    "--scale",
    "0.05",
    "--jobs",
    "2",
    "--no-cache",
    "--quiet",
]


def _run_sweep(obs_dir):
    rc = run_all_main([*RUN_ARGS, "--obs", str(obs_dir)])
    assert rc == 0
    summary = json.loads(
        (obs_dir / "sweep_summary.json").read_text(encoding="utf-8")
    )
    trace = json.loads((obs_dir / "trace.json").read_text(encoding="utf-8"))
    return summary, trace


def _assert_causally_linked(summary, trace):
    # One sweep, one trace id, one root span.
    assert len(summary["traces"]) == 1
    ((trace_id, root),) = summary["traces"].items()

    # Every job span parents to the sweep root and carries the trace id;
    # the summary's own linkage audit found no dangling parents.
    spans = summary["spans"]
    assert spans, "no job spans reconstructed"
    for span in spans:
        assert span["trace_id"] == trace_id
        assert span["parent_span_id"] == root["root_span_id"]
    assert summary["unlinked_spans"] == []

    # Kernel phases ran in *worker* processes, the scheduler events in
    # the parent: the merged trace must contain them all with parents
    # resolvable inside the one document.
    events = trace["traceEvents"]
    known = set()
    for event in events:
        span_id = (event.get("args") or {}).get("span_id")
        if span_id:
            known.add(span_id)
    linked = 0
    for event in events:
        parent = (event.get("args") or {}).get("parent_span_id")
        if parent is not None:
            assert parent in known, f"dangling parent in {event['name']}"
            linked += 1
    assert linked > 0
    phase_events = [e for e in events if e.get("cat") == "phase"]
    assert phase_events, "kernel phase spans missing from merged trace"

    # The merge respected the importer contract: metadata first, then
    # non-decreasing non-negative timestamps.
    timed = [e.get("ts", 0) for e in events if e.get("ph") != "M"]
    assert timed == sorted(timed)
    assert all(ts >= 0 for ts in timed)


def test_parallel_sweep_spans_link_across_processes(tmp_path):
    summary, trace = _run_sweep(tmp_path / "obs")
    _assert_causally_linked(summary, trace)

    jobs = summary["jobs"]
    assert jobs["finished"] == jobs["jobs"] > 0
    assert jobs["failed"] == 0
    stages = summary["stages"]
    assert stages["queue_wait_us"]["count"] == jobs["jobs"]
    assert stages["execute_us"]["count"] == jobs["jobs"]
    assert any(name.startswith("phase.") for name in stages)


def test_spans_survive_injected_crash_retry(tmp_path):
    # Kill the second worker launch with the OOM-killer stand-in from
    # repro.faults: the job retries in a fresh process, and its span
    # must still stitch into the same sweep tree.
    reset_health()
    faults.install(FaultPlan.of(FaultSpec(site="runtime.worker.kill", action="crash", nth=2)))
    try:
        summary, trace = _run_sweep(tmp_path / "obs")
    finally:
        faults.uninstall()

    _assert_causally_linked(summary, trace)
    jobs = summary["jobs"]
    assert jobs["finished"] == jobs["jobs"] > 0
    assert jobs["crash_retries"] >= 1
    assert jobs["fault_recoveries"] >= 1
    retried = [s for s in summary["spans"] if s["retries"]]
    assert retried and all(s["status"] == "finished" for s in retried)
