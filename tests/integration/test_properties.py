"""Cross-cutting property tests on library invariants."""

from hypothesis import given, settings, strategies as st

from repro.caches.lru_stack import StackProfile
from repro.core.controller import ControllerConfig, MigrationController
from repro.partition.graph import build_transition_graph
from repro.partition.metrics import evaluate_partition
from repro.partition.static import random_split


class TestStackProfileAlgebra:
    @given(
        a=st.lists(st.one_of(st.none(), st.integers(1, 30)), max_size=60),
        b=st.lists(st.one_of(st.none(), st.integers(1, 30)), max_size=60),
        x=st.integers(0, 40),
    )
    def test_merge_is_commutative_pointwise(self, a, b, x):
        pa, pb = StackProfile(), StackProfile()
        pa.record_stream(a)
        pb.record_stream(b)
        ab = pa.merge(pb)
        ba = pb.merge(pa)
        assert ab.total == ba.total
        assert ab.fraction_deeper(x) == ba.fraction_deeper(x)

    @given(
        streams=st.lists(
            st.lists(st.one_of(st.none(), st.integers(1, 20)), max_size=30),
            min_size=1,
            max_size=4,
        ),
        x=st.integers(0, 25),
    )
    def test_merge_counts_match_concatenation(self, streams, x):
        merged = StackProfile.merge_all(
            [self._profile(s) for s in streams]
        )
        flat = self._profile([d for s in streams for d in s])
        assert merged.total == flat.total
        assert merged.fraction_deeper(x) == flat.fraction_deeper(x)

    @staticmethod
    def _profile(depths):
        p = StackProfile()
        p.record_stream(depths)
        return p

    @given(depths=st.lists(st.one_of(st.none(), st.integers(1, 50)), max_size=80))
    def test_fraction_deeper_monotone_in_x(self, depths):
        p = StackProfile()
        p.record_stream(depths)
        values = [p.fraction_deeper(x) for x in range(0, 60, 7)]
        assert values == sorted(values, reverse=True)


class TestTransitionGraphInvariants:
    @given(stream=st.lists(st.integers(0, 12), max_size=120))
    def test_cut_symmetric_under_complement(self, stream):
        graph = build_transition_graph(stream)
        side_a, side_b = random_split(graph.nodes, seed=1)
        assert graph.cut_weight(side_a) == graph.cut_weight(side_b)

    @given(stream=st.lists(st.integers(0, 12), max_size=120))
    def test_total_weight_counts_non_self_pairs(self, stream):
        graph = build_transition_graph(stream)
        expected = sum(
            1 for a, b in zip(stream, stream[1:]) if a != b
        )
        assert graph.total_weight == expected

    @given(stream=st.lists(st.integers(0, 12), max_size=120))
    def test_cut_never_exceeds_total(self, stream):
        graph = build_transition_graph(stream)
        side_a, side_b = random_split(graph.nodes, seed=0)
        quality = evaluate_partition(graph, side_a, side_b)
        assert 0 <= quality.cut_weight <= graph.total_weight


class TestControllerInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        stream=st.lists(st.integers(0, 200), max_size=400),
        subsets=st.sampled_from([2, 4]),
    )
    def test_subset_always_in_range_and_transitions_bounded(
        self, stream, subsets
    ):
        controller = MigrationController(
            ControllerConfig(num_subsets=subsets, filter_bits=10)
        )
        for line in stream:
            assert 0 <= controller.observe(line) < subsets
        assert controller.stats.transitions <= max(0, len(stream))
        assert controller.stats.sampled_references <= controller.stats.references
