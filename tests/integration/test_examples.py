"""Examples stay importable and their helpers behave.

The examples' ``main()`` functions run full-scale demos; these tests
exercise their building blocks cheaply so a broken example fails CI
rather than a user's first contact with the library.
"""

import ast
import pathlib

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


class TestExampleFiles:
    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "affinity_dynamics.py",
            "olden_splittability.py",
            "multicore_migration.py",
            "offline_vs_online.py",
            "eight_way_scaling.py",
        } <= names

    def test_all_examples_parse_and_have_main(self):
        for path in EXAMPLES.glob("*.py"):
            tree = ast.parse(path.read_text())
            functions = {
                node.name
                for node in ast.walk(tree)
                if isinstance(node, ast.FunctionDef)
            }
            assert "main" in functions, path.name

    def test_all_examples_have_module_docstring(self):
        for path in EXAMPLES.glob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), path.name


class TestAffinityDynamicsHelpers:
    def test_strip_renders_signs(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "affinity_dynamics", EXAMPLES / "affinity_dynamics.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        strip = module.strip([10] * 50 + [-10] * 50, buckets=10)
        assert strip == "+++++-----"
        mixed = module.strip([10, -10] * 50, buckets=10)
        assert set(mixed) == {"~"}
