"""End-to-end checks of the paper's central claims, at reduced scale.

Each test names the paper section it reproduces.  These are the
"shape" assertions: who wins, in which regime, by direction — the full
magnitudes live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.analysis.stack_profiles import run_stack_experiment
from repro.caches.hierarchy import CoreCacheConfig, SingleCoreHierarchy
from repro.core.controller import ControllerConfig, MigrationController
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.traces.synthetic import (
    Circular,
    HalfRandom,
    PermutationCycle,
    UniformRandom,
    behavior_trace,
)


def run_pair(trace, caches, controller):
    """Run baseline + migrating chip over the same trace."""
    trace = list(trace)
    baseline = SingleCoreHierarchy(caches)
    for access in trace:
        baseline.access(access)
    chip = MultiCoreChip(
        ChipConfig(num_cores=4, caches=caches, controller=controller)
    )
    chip.run(trace)
    return baseline.stats, chip.stats


SMALL_CACHES = CoreCacheConfig(
    il1_bytes=1024, dl1_bytes=1024, l1_ways=4, l2_bytes=8 * 1024, l2_ways=4
)
SMALL_CONTROLLER = ControllerConfig(
    num_subsets=4,
    filter_bits=12,
    x_window_size=16,
    y_window_size=8,
    l2_filtering=True,
)


class TestSection33Figure3:
    """Affinity dynamics (section 3.3 / Figure 3)."""

    def test_circular_transition_frequency_reaches_2_over_n(self):
        """Optimal Circular split: one transition every N/2 references."""
        from repro.core.affinity_store import UnboundedAffinityStore
        from repro.core.mechanism import SplitMechanism

        n = 1000
        m = SplitMechanism(50, UnboundedAffinityStore())
        transitions = 0
        previous = None
        total = 300_000
        tail = 0
        for i, e in enumerate(Circular(n).addresses(total)):
            sign = m.process(e) >= 0
            if previous is not None and sign != previous:
                transitions += 1
                if i >= total - 10 * n:
                    tail += 1
            previous = sign
        tail_frequency = tail / (10 * n)
        assert tail_frequency == pytest.approx(2.0 / n, rel=0.5)

    def test_halfrandom_transition_frequency_reaches_1_over_m(self):
        """Paper: 'one transition every 300 references for
        HalfRandom(300)' once split."""
        from repro.core.affinity_store import UnboundedAffinityStore
        from repro.core.mechanism import SplitMechanism

        m_burst = 300
        mechanism = SplitMechanism(100, UnboundedAffinityStore())
        behavior = HalfRandom(4000, m_burst)
        transitions = 0
        previous = None
        total = 400_000
        tail = 0
        tail_span = 60_000
        for i, e in enumerate(behavior.addresses(total)):
            sign = mechanism.process(e) >= 0
            if previous is not None and sign != previous:
                transitions += 1
                if i >= total - tail_span:
                    tail += 1
            previous = sign
        assert tail / tail_span == pytest.approx(1.0 / m_burst, rel=0.5)


class TestSection34:
    """The transition filter on unsplittable working sets."""

    def test_random_set_transitions_suppressed_but_nonzero(self):
        controller = MigrationController(
            ControllerConfig(num_subsets=2, filter_bits=18)
        )
        for e in UniformRandom(5000, seed=7).addresses(300_000):
            controller.observe(e)
        frequency = controller.stats.transition_frequency
        assert 0 < frequency < 0.05  # the paper's ~3% ballpark


class TestSection42Table2:
    """The four-core experiment, miniaturised 64x (8 KB L2s)."""

    def test_splittable_working_set_wins(self):
        """The art/ammp/em3d/health regime: working set between one L2
        and the aggregate -> migration removes most L2 misses."""
        trace = behavior_trace(Circular(400), 400_000)  # 25 KB vs 8/32 KB
        baseline, chip = run_pair(trace, SMALL_CACHES, SMALL_CONTROLLER)
        ratio = chip.l2_misses / baseline.l2_misses
        assert ratio < 0.5
        assert chip.migrations > 0

    def test_pointer_chase_wins_like_mcf(self):
        trace = behavior_trace(PermutationCycle(400, seed=3), 400_000)
        baseline, chip = run_pair(trace, SMALL_CACHES, SMALL_CONTROLLER)
        assert chip.l2_misses / baseline.l2_misses < 0.7

    def test_small_working_set_neutral(self):
        """The twolf/crafty regime: the set fits one L2; L2 filtering
        keeps migrations near zero and the ratio near 1."""
        trace = behavior_trace(Circular(100), 200_000)  # 6 KB < 8 KB
        baseline, chip = run_pair(trace, SMALL_CACHES, SMALL_CONTROLLER)
        assert baseline.l2_misses < 1000  # almost everything hits
        ratio_events = abs(chip.l2_misses - baseline.l2_misses)
        assert ratio_events <= max(200, baseline.l2_misses)
        assert chip.migrations < 50

    def test_huge_working_set_neutral_via_affinity_cache(self):
        """The swim/mgrid/mst regime: working set exceeds the aggregate;
        a small affinity cache forces A_e = 0 and suppresses
        migrations."""
        controller = ControllerConfig(
            num_subsets=4,
            filter_bits=12,
            x_window_size=16,
            y_window_size=8,
            l2_filtering=True,
            affinity_cache_entries=64,
            affinity_cache_ways=4,
        )
        trace = behavior_trace(Circular(4000), 400_000)  # 256 KB >> 32 KB
        baseline, chip = run_pair(trace, SMALL_CACHES, controller)
        assert chip.migrations < 100
        assert chip.l2_misses == pytest.approx(baseline.l2_misses, rel=0.1)

    def test_random_set_larger_than_one_l2_gets_no_real_win(self):
        """The vpr regime: an unsplittable set slightly over one L2
        never gets the splittable-regime win (at miniature scale the
        outcome hovers around 1.0 — replication of valid copies can buy
        a few percent back; the paper's full-scale vpr loses 60 %)."""
        trace = behavior_trace(UniformRandom(180, seed=1), 300_000)  # 11 KB
        baseline, chip = run_pair(trace, SMALL_CACHES, SMALL_CONTROLLER)
        assert chip.l2_misses >= 0.9 * baseline.l2_misses
        # And it pays for that with a migration storm, unlike the
        # genuinely splittable sets.
        assert chip.migrations > 1000


class TestSection41Figures45:
    """Stack profiles: splittability is common but not universal."""

    def test_circular_splittable_random_not(self):
        splittable = run_stack_experiment(Circular(2000).addresses(500_000))
        unsplittable = run_stack_experiment(
            UniformRandom(2000, seed=2).addresses(500_000)
        )
        from repro.analysis.splittability import profile_gap

        assert profile_gap(splittable) > 0.3
        assert profile_gap(unsplittable) < 0.05

    def test_transition_frequency_stays_low_everywhere(self):
        """Paper: 'in all cases, the transition frequency remains low'
        (the worst, vpr, is 1.34%)."""
        for behavior in (
            Circular(2000),
            UniformRandom(2000, seed=3),
            HalfRandom(2000, 300, seed=4),
        ):
            result = run_stack_experiment(behavior.addresses(200_000))
            assert result.transition_frequency < 0.02
