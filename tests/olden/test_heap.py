"""The traced heap."""

import pytest

from repro.olden.heap import FIELD_BYTES, TracedHeap
from repro.traces.trace import AccessKind


class TestAllocation:
    def test_addresses_disjoint_and_aligned(self):
        heap = TracedHeap("t")
        a = heap.allocate(["x", "y"])
        b = heap.allocate(["z"])
        assert b.address >= a.address + 2 * FIELD_BYTES
        assert a.address % 8 == 0

    def test_alignment_honoured(self):
        heap = TracedHeap("t")
        heap.allocate(["x"])
        b = heap.allocate(["y"], align=64)
        assert b.address % 64 == 0

    def test_bad_alignment_rejected(self):
        heap = TracedHeap("t")
        with pytest.raises(ValueError):
            heap.allocate(["x"], align=3)

    def test_allocate_array(self):
        heap = TracedHeap("t")
        arr = heap.allocate_array(5)
        assert arr.size_bytes == 5 * FIELD_BYTES

    def test_allocation_emits_no_accesses(self):
        heap = TracedHeap("t")
        heap.allocate(["x", "y"])
        assert heap.recorded_accesses == 0


class TestFieldAccess:
    def test_set_get_roundtrip(self):
        heap = TracedHeap("t")
        obj = heap.allocate(["value"])
        obj.set("value", 42)
        assert obj.get("value") == 42

    def test_accesses_traced_at_field_addresses(self):
        heap = TracedHeap("t")
        obj = heap.allocate(["a", "b"])
        obj.set("b", 1)
        obj.get("b")
        trace = heap.finish()
        accesses = list(trace.accesses())
        assert len(accesses) == 2
        assert accesses[0].address == obj.address + FIELD_BYTES
        assert accesses[0].kind is AccessKind.STORE
        assert accesses[1].kind is AccessKind.LOAD

    def test_instruction_counter_advances(self):
        heap = TracedHeap("t")
        obj = heap.allocate(["x"])
        before = heap.instruction
        obj.set("x", 1)
        obj.get("x")
        assert heap.instruction > before

    def test_work_charges_instructions_only(self):
        heap = TracedHeap("t")
        heap.work(100)
        assert heap.instruction >= 100
        assert heap.recorded_accesses == 0

    def test_work_rejects_negative(self):
        with pytest.raises(ValueError):
            TracedHeap("t").work(-1)

    def test_peek_is_untraced(self):
        heap = TracedHeap("t")
        obj = heap.allocate(["x"])
        obj.set("x", 7)
        n = heap.recorded_accesses
        assert obj.peek("x") == 7
        assert heap.recorded_accesses == n


class TestRecordedTrace:
    def test_replayable(self):
        heap = TracedHeap("t")
        obj = heap.allocate(["x"])
        obj.set("x", 1)
        trace = heap.finish()
        first = [a.address for a in trace.accesses()]
        second = [a.address for a in trace.accesses()]
        assert first == second

    def test_instruction_count(self):
        heap = TracedHeap("t")
        obj = heap.allocate(["x"])
        obj.set("x", 1)
        trace = heap.finish()
        assert trace.instruction_count > 0

    def test_len(self):
        heap = TracedHeap("t")
        obj = heap.allocate(["x"])
        obj.set("x", 1)
        obj.get("x")
        assert len(heap.finish()) == 2
