"""The extension Olden benchmarks (treeadd, perimeter)."""

import pytest

from repro.olden import OLDEN_EXTENSIONS, olden_benchmark
from repro.olden.perimeter import perimeter
from repro.olden.treeadd import treeadd
from repro.traces.trace import measure_trace


class TestTreeadd:
    def test_sum_verified(self):
        # treeadd raises internally if the traced sum is wrong.
        trace = treeadd(levels=8, iterations=2)
        assert len(trace) > 0

    def test_repeated_walks_revisit_same_lines(self):
        one = measure_trace(treeadd(levels=8, iterations=1).accesses())
        two = measure_trace(treeadd(levels=8, iterations=2).accesses())
        # Double the walks, same footprint: pure reuse.
        assert two.distinct_lines == one.distinct_lines
        assert two.accesses >= 1.4 * one.accesses

    def test_pointer_loads_tagged(self):
        trace = treeadd(levels=6)
        assert trace.pointer_load_count > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            treeadd(levels=0)
        with pytest.raises(ValueError):
            treeadd(levels=3, iterations=0)


class TestPerimeter:
    def test_perimeter_verified_against_raster(self):
        # perimeter raises internally on mismatch with brute force.
        trace = perimeter(levels=5, iterations=1)
        assert len(trace) > 0

    def test_larger_image_more_work(self):
        small = len(perimeter(levels=4))
        large = len(perimeter(levels=6))
        assert large > 2 * small

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            perimeter(levels=0)
        with pytest.raises(ValueError):
            perimeter(levels=4, iterations=0)


class TestRegistry:
    def test_extensions_run_via_registry(self):
        for name in OLDEN_EXTENSIONS:
            trace = olden_benchmark(name, scale=0.1)
            assert len(trace) > 100, name
