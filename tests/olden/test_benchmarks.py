"""The five mini-Olden benchmarks: correctness and trace properties."""

import pytest

from repro.olden import OLDEN_BENCHMARKS, olden_benchmark
from repro.olden.bisort import bisort
from repro.olden.bh import bh
from repro.olden.em3d import em3d
from repro.olden.health import health
from repro.olden.mst import mst
from repro.traces.trace import measure_trace


class TestBisort:
    def test_sorts_correctly(self):
        # check=True raises if the backward pass did not sort descending.
        trace = bisort(size=256, check=True)
        assert len(trace) > 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bisort(size=100)

    def test_deterministic(self):
        a = [x.address for x in bisort(size=64).accesses()]
        b = [x.address for x in bisort(size=64).accesses()]
        assert a == b

    def test_access_count_scales_n_log2n(self):
        small = len(bisort(size=256))
        large = len(bisort(size=1024))
        # n log^2 n growth: 4x elements -> more than 4x accesses.
        assert large > 4 * small


class TestEm3d:
    def test_runs_and_traces(self):
        trace = em3d(num_nodes=64, degree=4, timesteps=2)
        stats = measure_trace(trace.accesses())
        assert stats.accesses == len(trace)
        assert stats.loads > stats.stores  # gather-dominated kernel

    def test_footprint_scales_with_nodes(self):
        small = measure_trace(em3d(num_nodes=64, degree=4, timesteps=1).accesses())
        large = measure_trace(em3d(num_nodes=256, degree=4, timesteps=1).accesses())
        assert large.distinct_lines > 3 * small.distinct_lines

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            em3d(num_nodes=0)


class TestHealth:
    def test_runs(self):
        trace = health(max_level=3, timesteps=30)
        assert len(trace) > 0

    def test_footprint_grows_with_time(self):
        """List-cell churn makes the footprint grow with simulated time
        (the region allocator never frees — as in Olden)."""
        short = measure_trace(health(max_level=3, timesteps=20).accesses())
        long = measure_trace(health(max_level=3, timesteps=80).accesses())
        assert long.distinct_lines > short.distinct_lines

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            health(max_level=0)
        with pytest.raises(ValueError):
            health(timesteps=0)


class TestMst:
    def test_mst_weight_verified_against_reference(self):
        # mst() itself raises if the traced Prim disagrees with the
        # untraced reference implementation.
        trace = mst(num_vertices=48)
        assert len(trace) > 0

    def test_footprint_quadratic_in_vertices(self):
        small = measure_trace(mst(num_vertices=32).accesses())
        large = measure_trace(mst(num_vertices=64).accesses())
        assert large.distinct_lines > 3 * small.distinct_lines

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            mst(num_vertices=1)


class TestBh:
    def test_runs(self):
        trace = bh(num_bodies=128, timesteps=1)
        assert len(trace) > 0

    def test_deterministic(self):
        a = [x.address for x in bh(num_bodies=64).accesses()]
        b = [x.address for x in bh(num_bodies=64).accesses()]
        assert a == b

    def test_more_steps_more_accesses(self):
        one = len(bh(num_bodies=128, timesteps=1))
        two = len(bh(num_bodies=128, timesteps=2))
        assert two > 1.8 * one

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            bh(num_bodies=1)
        with pytest.raises(ValueError):
            bh(num_bodies=64, timesteps=0)


class TestRegistry:
    def test_all_benchmarks_run_at_tiny_scale(self):
        for name in OLDEN_BENCHMARKS:
            trace = olden_benchmark(name, scale=0.05)
            assert len(trace) > 100, name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            olden_benchmark("nope")

    def test_instruction_rates_plausible(self):
        """Olden codes average a few instructions per memory access."""
        for name in OLDEN_BENCHMARKS:
            trace = olden_benchmark(name, scale=0.05)
            rate = trace.instruction_count / len(trace)
            assert 1.0 <= rate <= 10.0, (name, rate)
