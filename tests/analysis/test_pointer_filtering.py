"""Pointer-load filtering (paper section 6, future work)."""

from repro.analysis.pointer_filtering import run_pointer_filtering
from repro.olden.bisort import bisort
from repro.olden.em3d import em3d


class TestPointerTagging:
    def test_olden_traces_contain_pointer_accesses(self):
        trace = em3d(num_nodes=64, degree=4, timesteps=2)
        assert 0 < trace.pointer_load_count < len(trace)

    def test_flags_align_with_accesses(self):
        trace = bisort(size=64)
        pairs = list(trace.accesses_with_pointer_flags())
        assert len(pairs) == len(trace)
        assert sum(flag for _a, flag in pairs) == trace.pointer_load_count


class TestPointerFiltering:
    def test_gating_reduces_transitions(self):
        """Updating the filter only on pointer accesses can only reduce
        (or keep) the number of transitions."""
        trace = em3d(num_nodes=256, degree=6, timesteps=4)
        result = run_pointer_filtering(trace)
        assert result.references > 0
        assert 0.0 < result.pointer_fraction < 1.0
        assert result.transitions_pointer_only <= result.transitions_unfiltered

    def test_result_metrics(self):
        trace = bisort(size=512)
        result = run_pointer_filtering(trace)
        assert result.name == "bisort"
        assert 0.0 <= result.suppression <= 1.0
