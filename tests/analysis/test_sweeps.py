"""Parameter sweeps: the paper's section 3.3-3.5 design claims at
reduced scale."""

import pytest

from repro.analysis.sweeps import (
    filter_width_sweep,
    rwindow_sweep,
    sampling_sweep,
)
from repro.core.controller import ControllerConfig
from repro.traces.synthetic import Circular, HalfRandom, UniformRandom


class TestRWindowSweep:
    def test_circular_splits_iff_working_set_exceeds_twice_window(self):
        """Section 3.3: 'the algorithm is able to split a Circular
        working-set if N > 2|R|, but not if N <= 2|R|'."""
        points = rwindow_sweep(
            lambda: Circular(400),
            window_sizes=[50, 100, 400],
            num_references=400_000,
        )
        by_window = {p.window_size: p for p in points}
        assert by_window[50].split_achieved  # N = 8|R|
        assert by_window[100].split_achieved  # N = 4|R| > 2|R|
        assert not by_window[400].split_achieved  # N = |R| <= 2|R|

    def test_tail_frequency_bounded_by_half_window(self):
        """Section 3.3: after enough time the transition frequency never
        exceeds one transition every 2|R| references."""
        points = rwindow_sweep(
            lambda: Circular(800),
            window_sizes=[40, 80],
            num_references=600_000,
        )
        for point in points:
            assert point.tail_frequency <= 1.0 / (2 * point.window_size) * 1.5


class TestFilterWidthSweep:
    def test_wider_filter_fewer_transitions_on_random_set(self):
        """Section 3.4 qualitatively, end to end: adding filter bits
        reduces the transition frequency on an unsplittable set."""
        points = filter_width_sweep(
            lambda: UniformRandom(3000, seed=9),
            filter_bits_list=[16, 17, 18],
            num_references=500_000,
        )
        frequencies = [p.tail_frequency for p in points]
        assert frequencies[0] > frequencies[1] > frequencies[2] > 0

    def test_halving_law_with_saturated_affinities(self):
        """Section 3.4 exactly, at the filter level: with affinities
        saturated at ±2^15 with probability 1/2, the transition
        frequency is 1/2^(1+f-16)."""
        from repro.common.rng import make_rng
        from repro.core.transition_filter import TransitionFilter

        rng = make_rng(11)
        steps = [int(s) for s in rng.choice([-(1 << 15), 1 << 15], size=300_000)]
        for bits, expected in ((17, 1 / 4), (18, 1 / 8), (20, 1 / 32)):
            f = TransitionFilter(bits)
            flips = 0
            previous = f.subset
            for step in steps:
                subset = f.update(step)
                if subset != previous:
                    flips += 1
                previous = subset
            assert flips / len(steps) == pytest.approx(expected, rel=0.15), bits

    def test_splittable_set_keeps_transitioning(self):
        """On HalfRandom the filter delays but does not suppress
        transitions: frequency stays near 1/m for moderate widths."""
        points = filter_width_sweep(
            lambda: HalfRandom(1000, 200, seed=2),
            filter_bits_list=[16, 18],
            num_references=400_000,
            window_size=100,
        )
        for point in points:
            assert point.tail_frequency > 1.0 / (4 * 200)


class TestSamplingSweep:
    def test_fewer_samples_fewer_filter_updates(self):
        points = sampling_sweep(
            lambda: Circular(2000),
            residue_counts=[31, 8, 4],
            num_references=200_000,
        )
        updates = [p.filter_updates for p in points]
        assert updates[0] > updates[1] > updates[2]

    def test_sample_fractions_reported(self):
        points = sampling_sweep(
            lambda: Circular(500),
            residue_counts=[31, 8],
            num_references=50_000,
        )
        assert points[0].sample_fraction == 1.0
        assert points[1].sample_fraction == pytest.approx(8 / 31)

    def test_invalid_residue_count(self):
        with pytest.raises(ValueError):
            sampling_sweep(lambda: Circular(100), residue_counts=[0])

    def test_respects_base_config(self):
        points = sampling_sweep(
            lambda: Circular(500),
            residue_counts=[8],
            num_references=50_000,
            config_base=ControllerConfig(num_subsets=2, filter_bits=14),
        )
        assert len(points) == 1
