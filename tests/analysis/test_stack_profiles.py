"""The section 4.1 stack-profile experiment."""

import pytest

from repro.analysis.stack_profiles import (
    PAPER_CACHE_SIZE_LABELS,
    PAPER_CACHE_SIZES_LINES,
    run_stack_experiment,
)
from repro.core.controller import ControllerConfig
from repro.traces.synthetic import Circular, UniformRandom


class TestPaperSizes:
    def test_sizes_are_16k_to_16m(self):
        assert PAPER_CACHE_SIZES_LINES[0] * 64 == 16 * 1024
        assert PAPER_CACHE_SIZES_LINES[-1] * 64 == 16 * 1024 * 1024
        assert len(PAPER_CACHE_SIZES_LINES) == len(PAPER_CACHE_SIZE_LABELS)


class TestExperiment:
    def test_reference_counts(self):
        result = run_stack_experiment(Circular(100).addresses(5000))
        assert result.references == 5000
        assert result.p1.total == 5000
        assert result.p4.total == 5000

    def test_p4_splits_references_across_stacks(self):
        result = run_stack_experiment(Circular(2000).addresses(400_000))
        populated = sum(1 for p in result.per_stack if p.total > 0)
        assert populated >= 2

    def test_splittable_circular_reduces_p4(self):
        """Circular(2000) = 125 KB: p1 misses a 64 KB cache badly, the
        4-way split fits each quarter into 64 KB (1024 lines)."""
        result = run_stack_experiment(Circular(2000).addresses(600_000))
        p1_64k = result.p1.fraction_deeper(1024)
        p4_64k = result.p4.fraction_deeper(1024)
        assert p1_64k > 0.9  # 2000 lines >> 1024
        assert p4_64k < 0.5  # quarters (~500 lines) fit

    def test_random_set_shows_no_gap(self):
        result = run_stack_experiment(
            UniformRandom(2000, seed=4).addresses(300_000)
        )
        p1_curve, p4_curve = result.curves()
        for p1_value, p4_value in zip(p1_curve, p4_curve):
            assert p4_value >= p1_value - 0.05

    def test_transition_frequency_reported(self):
        result = run_stack_experiment(Circular(2000).addresses(100_000))
        assert 0.0 <= result.transition_frequency <= 1.0

    def test_custom_config(self):
        config = ControllerConfig(num_subsets=2, x_window_size=32)
        result = run_stack_experiment(
            Circular(500).addresses(50_000), config=config
        )
        assert len(result.per_stack) == 2
