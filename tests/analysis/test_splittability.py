"""Splittability metrics."""

from repro.analysis.splittability import profile_gap, splittability_report
from repro.analysis.stack_profiles import run_stack_experiment
from repro.traces.synthetic import Circular, UniformRandom


class TestProfileGap:
    def test_circular_has_large_gap(self):
        result = run_stack_experiment(Circular(2000).addresses(600_000))
        assert profile_gap(result) > 0.3

    def test_random_has_small_gap(self):
        result = run_stack_experiment(
            UniformRandom(2000, seed=1).addresses(300_000)
        )
        assert profile_gap(result) < 0.05


class TestReport:
    def test_circular_classified_splittable(self):
        result = run_stack_experiment(
            Circular(2000).addresses(600_000), name="circ"
        )
        report = splittability_report(result)
        assert report.splittable
        assert report.name == "circ"

    def test_random_classified_unsplittable(self):
        result = run_stack_experiment(
            UniformRandom(2000, seed=1).addresses(300_000), name="rand"
        )
        assert not splittability_report(result).splittable
