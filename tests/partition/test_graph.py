"""Transition graph construction and queries."""

from repro.partition.graph import TransitionGraph, build_transition_graph


class TestTransitionGraph:
    def test_add_and_weight(self):
        g = TransitionGraph()
        g.add_transition(1, 2)
        g.add_transition(1, 2)
        assert g.weight(1, 2) == 2
        assert g.weight(2, 1) == 2  # undirected

    def test_self_transition_ignored_for_weight(self):
        g = TransitionGraph()
        g.add_transition(1, 1)
        assert g.total_weight == 0
        assert 1 in g.nodes  # but the node is tracked

    def test_degree(self):
        g = TransitionGraph()
        g.add_transition(1, 2, weight=3)
        g.add_transition(1, 3, weight=2)
        assert g.degree(1) == 5

    def test_cut_weight(self):
        g = TransitionGraph()
        g.add_transition(1, 2)
        g.add_transition(2, 3)
        g.add_transition(3, 4)
        assert g.cut_weight({1, 2}) == 1  # only edge 2-3 crosses

    def test_edges_enumerated_once(self):
        g = TransitionGraph()
        g.add_transition(1, 2)
        g.add_transition(2, 3, weight=4)
        edges = sorted(g.edges())
        assert edges == [(1, 2, 1), (2, 3, 4)]

    def test_invalid_weight(self):
        import pytest

        with pytest.raises(ValueError):
            TransitionGraph().add_transition(1, 2, weight=0)


class TestBuildFromStream:
    def test_circular_stream_is_a_cycle(self):
        g = build_transition_graph([0, 1, 2, 0, 1, 2, 0])
        assert g.weight(0, 1) == 2
        assert g.weight(2, 0) == 2
        assert g.num_nodes == 3

    def test_empty_stream(self):
        g = build_transition_graph([])
        assert g.num_nodes == 0
        assert g.total_weight == 0

    def test_cut_fraction_equals_replayed_transitions(self):
        """Graph cut weight = number of subset changes when replaying
        the same stream against the same static partition."""
        from repro.partition.metrics import replay_transition_frequency

        stream = [0, 1, 2, 3, 0, 1, 2, 3, 0, 2, 1, 3]
        g = build_transition_graph(stream)
        side_a = {0, 1}
        frequency = replay_transition_frequency(
            stream, lambda line: 0 if line in side_a else 1
        )
        assert g.cut_weight(side_a) == round(frequency * (len(stream) - 1))
