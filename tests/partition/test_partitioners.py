"""Kernighan-Lin and the static baselines."""

import pytest

from repro.partition.graph import build_transition_graph
from repro.partition.kernighan_lin import kernighan_lin_bipartition
from repro.partition.metrics import evaluate_partition
from repro.partition.static import (
    address_halving_split,
    modulo_split,
    random_split,
)
from repro.traces.synthetic import Circular, HalfRandom, UniformRandom


class TestKernighanLin:
    def test_empty_graph(self):
        g = build_transition_graph([])
        assert kernighan_lin_bipartition(g) == (set(), set())

    def test_balanced_sizes(self):
        g = build_transition_graph(list(Circular(40).addresses(400)))
        a, b = kernighan_lin_bipartition(g)
        assert abs(len(a) - len(b)) <= 1
        assert a | b == set(range(40))

    def test_finds_the_obvious_cut(self):
        """Two cliques joined by one edge: KL must separate them."""
        stream = []
        for _ in range(20):
            stream.extend([0, 1, 2, 3])  # clique A
        stream.append(4)  # single crossing
        for _ in range(20):
            stream.extend([4, 5, 6, 7])  # clique B
        g = build_transition_graph(stream)
        a, b = kernighan_lin_bipartition(g, seed=1)
        quality = evaluate_partition(g, a, b)
        assert {0, 1, 2, 3} in (a, b)
        assert quality.cut_fraction < 0.05

    def test_improves_on_random_for_halfrandom(self):
        stream = list(HalfRandom(40, 10, seed=2).addresses(3000))
        g = build_transition_graph(stream)
        kl_a, kl_b = kernighan_lin_bipartition(g, seed=0)
        rnd_a, rnd_b = random_split(g.nodes, seed=0)
        kl_cut = evaluate_partition(g, kl_a, kl_b).cut_fraction
        rnd_cut = evaluate_partition(g, rnd_a, rnd_b).cut_fraction
        assert kl_cut < rnd_cut

    def test_deterministic_for_seed(self):
        g = build_transition_graph(list(Circular(30).addresses(300)))
        assert kernighan_lin_bipartition(g, seed=5) == kernighan_lin_bipartition(
            g, seed=5
        )


class TestStaticBaselines:
    def test_random_split_balanced(self):
        a, b = random_split(range(100))
        assert abs(len(a) - len(b)) <= 1
        assert a | b == set(range(100))

    def test_modulo_split(self):
        a, b = modulo_split(range(10))
        assert a == {0, 2, 4, 6, 8}
        assert b == {1, 3, 5, 7, 9}

    def test_address_halving(self):
        a, b = address_halving_split([5, 1, 9, 3])
        assert a == {1, 3}
        assert b == {5, 9}

    def test_random_split_on_random_stream_cuts_half(self):
        """Section 3.4: 'however we split the set in two parts of equal
        size, the transition frequency equals 1/2' on a random stream."""
        stream = list(UniformRandom(200, seed=0).addresses(20_000))
        g = build_transition_graph(stream)
        a, b = random_split(g.nodes, seed=1)
        quality = evaluate_partition(g, a, b)
        assert quality.cut_fraction == pytest.approx(0.5, abs=0.03)


class TestMetrics:
    def test_overlapping_sides_rejected(self):
        g = build_transition_graph([0, 1])
        with pytest.raises(ValueError):
            evaluate_partition(g, {0, 1}, {1})

    def test_balance_property(self):
        g = build_transition_graph([0, 1, 2, 3])
        q = evaluate_partition(g, {0}, {1, 2, 3})
        assert q.balance == 0.75

    def test_empty_quality(self):
        g = build_transition_graph([])
        q = evaluate_partition(g, set(), set())
        assert q.cut_fraction == 0.0
        assert q.balance == 0.5
