"""The full migration-mode chip."""

import pytest

from repro.caches.hierarchy import CoreCacheConfig, SingleCoreHierarchy
from repro.core.controller import ControllerConfig
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.traces.synthetic import Circular, behavior_trace
from repro.traces.trace import Access, AccessKind


def small_chip(migration_enabled=True, num_cores=4, **controller_kw) -> MultiCoreChip:
    """A chip with tiny caches so capacity effects appear fast."""
    controller = ControllerConfig(
        num_subsets=num_cores,
        filter_bits=12,
        x_window_size=16,
        y_window_size=8,
        l2_filtering=True,
        **controller_kw,
    )
    return MultiCoreChip(
        ChipConfig(
            num_cores=num_cores,
            caches=CoreCacheConfig(
                il1_bytes=1024,
                dl1_bytes=1024,
                l1_ways=4,
                l2_bytes=8 * 1024,
                l2_ways=4,
            ),
            controller=controller,
            migration_enabled=migration_enabled,
        )
    )


class TestConfig:
    def test_cores_must_match_controller(self):
        with pytest.raises(ValueError):
            ChipConfig(num_cores=2)  # default controller is 4-way

    def test_migration_disabled_skips_check(self):
        chip_config = ChipConfig(num_cores=2, migration_enabled=False)
        assert chip_config.num_cores == 2


class TestBasicAccounting:
    def test_l1_hit_generates_no_l2_traffic(self):
        chip = small_chip()
        chip.access(Access(0, AccessKind.LOAD, 0))
        l2_before = chip.stats.l2_accesses
        chip.access(Access(0, AccessKind.LOAD, 1))
        assert chip.stats.l2_accesses == l2_before

    def test_store_writes_through(self):
        chip = small_chip()
        chip.access(Access(0, AccessKind.LOAD, 0))
        before = chip.stats.l2_accesses
        chip.access(Access(0, AccessKind.STORE, 1))
        assert chip.stats.l2_accesses == before + 1
        assert chip.bus_traffic.store_bytes > 0

    def test_l1_fill_broadcast_recorded(self):
        chip = small_chip()
        chip.access(Access(0, AccessKind.LOAD, 0))
        assert chip.bus_traffic.l1_fill_bytes == 64

    def test_instructions_tracked(self):
        chip = small_chip()
        chip.access(Access(0, AccessKind.LOAD, 99))
        assert chip.stats.instructions == 100

    def test_update_bus_summary(self):
        chip = small_chip()
        chip.access(Access(0, AccessKind.STORE, 0))
        summary = chip.update_bus_bytes()
        assert summary["store_bytes"] > 0
        assert summary["peak_bytes_per_cycle"] == pytest.approx(45, abs=2)


class TestMigrationBehaviour:
    def test_no_migrations_when_disabled(self):
        chip = small_chip(migration_enabled=False)
        for access in behavior_trace(Circular(1000), 50_000):
            chip.access(access)
        assert chip.stats.migrations == 0
        assert chip.active_core == 0

    def test_disabled_chip_matches_single_core_hierarchy(self):
        """With migrations off, the chip must reproduce the single-core
        baseline exactly (same caches, same policy)."""
        config = CoreCacheConfig(
            il1_bytes=1024, dl1_bytes=1024, l1_ways=4, l2_bytes=8 * 1024
        )
        chip = MultiCoreChip(
            ChipConfig(num_cores=4, caches=config, migration_enabled=False)
        )
        single = SingleCoreHierarchy(config)
        trace = list(behavior_trace(Circular(500), 20_000))
        for access in trace:
            chip.access(access)
            single.access(access)
        assert chip.stats.l2_misses == single.stats.l2_misses
        assert chip.stats.l1_misses == single.stats.l1_misses

    def test_migrations_happen_on_splittable_set(self):
        chip = small_chip()
        # 64 KB circular working set >> 8 KB L2, << 32 KB aggregate.
        for access in behavior_trace(Circular(1024), 200_000):
            chip.access(access)
        assert chip.stats.migrations > 0

    def test_migration_reduces_misses_on_splittable_set(self):
        """The headline effect at miniature scale: 4 small L2s +
        migration beat one small L2 on a circular set that fits the
        aggregate but not one cache."""
        baseline = small_chip(migration_enabled=False)
        migrating = small_chip()
        trace = list(behavior_trace(Circular(400), 300_000))  # 25 KB set
        for access in trace:
            baseline.access(access)
            migrating.access(access)
        assert migrating.stats.l2_misses < baseline.stats.l2_misses

    def test_active_core_follows_controller_subset(self):
        chip = small_chip()
        for access in behavior_trace(Circular(1024), 100_000):
            chip.access(access)
        assert chip.active_core == chip.controller.current_subset()

    def test_migration_count_matches_engine(self):
        chip = small_chip()
        for access in behavior_trace(Circular(1024), 100_000):
            chip.access(access)
        assert chip.stats.migrations == chip.engine.migrations


class TestTwoCoreConfiguration:
    def test_two_way_chip_works(self):
        """The paper: 'it works also on 2-core configurations'."""
        chip = small_chip(num_cores=2)
        baseline = small_chip(num_cores=2, migration_enabled=False)
        trace = list(behavior_trace(Circular(220), 150_000))  # ~14 KB set
        for access in trace:
            chip.access(access)
            baseline.access(access)
        assert chip.stats.migrations > 0
        assert chip.stats.l2_misses < baseline.stats.l2_misses
