"""Eight-core chips with the hierarchical controller (section 6:
"a larger number of cores")."""

import pytest

from repro.caches.hierarchy import CoreCacheConfig
from repro.core.multiway import HierarchicalConfig, HierarchicalController
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.traces.synthetic import Circular, behavior_trace

TINY = CoreCacheConfig(
    il1_bytes=512, dl1_bytes=512, l1_ways=2, l2_bytes=4 * 1024, l2_ways=4
)


def eight_core_chip() -> MultiCoreChip:
    controller = HierarchicalController(
        HierarchicalConfig(
            depth=3, filter_bits=12, root_window_size=32, l2_filtering=True
        )
    )
    return MultiCoreChip(
        ChipConfig(num_cores=8, caches=TINY, controller=None),
        controller=controller,
    )


class TestWiring:
    def test_mismatched_override_rejected(self):
        controller = HierarchicalController(HierarchicalConfig(depth=2))
        with pytest.raises(ValueError):
            MultiCoreChip(
                ChipConfig(num_cores=8, caches=TINY, controller=None),
                controller=controller,
            )

    def test_none_config_without_override_rejected(self):
        with pytest.raises(ValueError):
            MultiCoreChip(ChipConfig(num_cores=8, caches=TINY, controller=None))

    def test_chip_config_validates_builtin_controller(self):
        with pytest.raises(ValueError):
            ChipConfig(num_cores=8)  # default 4-way controller

    def test_eight_core_runs(self):
        chip = eight_core_chip()
        for access in behavior_trace(Circular(100), 5_000):
            chip.access(access)
        assert 0 <= chip.active_core < 8


class TestCapacityScaling:
    def test_eight_cores_beat_four_on_oversized_set(self):
        """A working set that exceeds 4 aggregated L2s but fits 8:
        the 8-core chip should remove more misses."""
        # 24 KB set vs 4 x 4 KB = 16 KB and 8 x 4 KB = 32 KB.
        trace = list(behavior_trace(Circular(384), 400_000))

        from repro.core.controller import ControllerConfig

        four = MultiCoreChip(
            ChipConfig(
                num_cores=4,
                caches=TINY,
                controller=ControllerConfig(
                    num_subsets=4,
                    filter_bits=12,
                    x_window_size=32,
                    y_window_size=16,
                    l2_filtering=True,
                ),
            )
        )
        eight = eight_core_chip()
        for access in trace:
            four.access(access)
            eight.access(access)
        assert eight.stats.l2_misses < four.stats.l2_misses
        assert eight.stats.migrations > 0
