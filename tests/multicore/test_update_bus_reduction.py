"""Register-update bandwidth reduction (paper section 6, future work)."""

import pytest

from repro.multicore.update_bus import RegisterUpdateReduction, UpdateBusModel


class TestThresholdBroadcasting:
    def test_full_duty_cycle_is_full_bandwidth(self):
        model = RegisterUpdateReduction()
        assert model.threshold_bandwidth(1.0) == pytest.approx(
            model.bus.bytes_per_cycle()
        )

    def test_zero_duty_cycle_removes_register_traffic(self):
        model = RegisterUpdateReduction()
        reduced = model.threshold_bandwidth(0.0)
        register_bytes = model.bus.retire_width * model.register_bits / 8
        assert reduced == pytest.approx(
            model.bus.bytes_per_cycle() - register_bytes
        )
        # Registers dominate: most of the 45 B/cycle goes away.
        assert reduced < model.bus.bytes_per_cycle() / 2

    def test_migration_penalty_additional_cycles(self):
        model = RegisterUpdateReduction()
        extra = model.threshold_migration_penalty_cycles()
        # 64 registers x ~9 bytes over a ~45 B/cycle bus: ~12 cycles.
        assert 5 < extra < 30

    def test_invalid_duty_cycle(self):
        with pytest.raises(ValueError):
            RegisterUpdateReduction().threshold_bandwidth(1.5)


class TestRegisterUpdateCache:
    def test_bandwidth_monotone_in_rewrite_fraction(self):
        model = RegisterUpdateReduction()
        assert model.cache_bandwidth(0.9) < model.cache_bandwidth(0.5)

    def test_spill_penalty_scales_with_entries(self):
        model = RegisterUpdateReduction()
        assert model.cache_migration_penalty_cycles(
            32
        ) == pytest.approx(2 * model.cache_migration_penalty_cycles(16))

    def test_invalid_inputs(self):
        model = RegisterUpdateReduction()
        with pytest.raises(ValueError):
            model.cache_bandwidth(-0.1)
        with pytest.raises(ValueError):
            model.cache_migration_penalty_cycles(-1)

    def test_reduction_keeps_migration_viable(self):
        """Even after spilling a 32-entry register-update cache, the
        migration penalty stays in the few-tens-of-cycles regime the
        paper's trade-off needs."""
        from repro.multicore.migration import MigrationPenaltyModel

        base = MigrationPenaltyModel()
        extra = RegisterUpdateReduction().cache_migration_penalty_cycles(32)
        assert (base.migration_cycles() + extra) < base.l2_miss_penalty_cycles
