"""Update-bus bandwidth model (section 2.3)."""

import pytest

from repro.multicore.update_bus import UpdateBusModel, UpdateBusTraffic


class TestBandwidthEstimate:
    def test_paper_example_is_about_45_bytes(self):
        """Section 2.3: 4-wide retirement, one store and one branch per
        cycle -> approximately 45 bytes per cycle."""
        model = UpdateBusModel()
        assert model.bytes_per_cycle() == pytest.approx(45, abs=2)

    def test_wider_core_needs_more(self):
        narrow = UpdateBusModel(retire_width=2)
        wide = UpdateBusModel(retire_width=8)
        assert wide.bytes_per_cycle() > narrow.bytes_per_cycle()

    def test_broadcast_cycles(self):
        model = UpdateBusModel(retire_width=4)
        assert model.broadcast_cycles(400) == 100

    def test_broadcast_rejects_negative(self):
        with pytest.raises(ValueError):
            UpdateBusModel().broadcast_cycles(-1)


class TestTraffic:
    def test_store_bytes(self):
        t = UpdateBusTraffic()
        t.record_store()
        assert t.store_bytes == 16  # 64-bit address + 64-bit value

    def test_l1_fill_bytes(self):
        t = UpdateBusTraffic()
        t.record_l1_fill(line_size=64)
        assert t.l1_fill_bytes == 64

    def test_total(self):
        t = UpdateBusTraffic()
        t.record_store()
        t.record_register_update()
        t.record_branch()
        t.record_l1_fill()
        assert t.total_bytes == (
            t.store_bytes + t.register_bytes + t.branch_bytes + t.l1_fill_bytes
        )

    def test_counts_accumulate(self):
        t = UpdateBusTraffic()
        t.record_store(3)
        assert t.store_bytes == 48
