"""Migration engine and penalty model."""

import pytest

from repro.multicore.migration import (
    MigrationEngine,
    MigrationPenaltyModel,
    break_even_pmig,
)


class TestEngine:
    def test_starts_on_core_zero(self):
        assert MigrationEngine(4).active_core == 0

    def test_migrate_counts(self):
        engine = MigrationEngine(4)
        assert engine.migrate_to(2) is True
        assert engine.active_core == 2
        assert engine.migrations == 1

    def test_no_op_migration_not_counted(self):
        engine = MigrationEngine(4)
        assert engine.migrate_to(0) is False
        assert engine.migrations == 0

    def test_invalid_target(self):
        engine = MigrationEngine(4)
        with pytest.raises(ValueError):
            engine.migrate_to(4)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MigrationEngine(0)
        with pytest.raises(ValueError):
            MigrationEngine(2, active_core=5)


class TestPenaltyModel:
    def test_migration_cycles_positive_and_small(self):
        model = MigrationPenaltyModel()
        cycles = model.migration_cycles()
        assert 1 < cycles < 100  # a pipeline refill, not a context switch

    def test_relative_penalty_below_paper_breakevens(self):
        """The implicit assumption: P_mig is at most a few tens of L2
        misses; the default model lands well under mcf's 60."""
        model = MigrationPenaltyModel()
        assert model.relative_penalty() < 60


class TestBreakEven:
    def test_paper_mcf_arithmetic(self):
        """Table 2 mcf: 1e9-ish instr scale-free check: with misses
        every 24 instr baseline and 36 migrating, and a migration every
        4500 instr, ~62 misses are removed per migration."""
        instructions = 45_000_000
        baseline = instructions // 24
        migrating = instructions // 36
        migrations = instructions // 4500
        value = break_even_pmig(instructions, baseline, migrating, migrations)
        assert value == pytest.approx(62.5, rel=0.05)

    def test_no_migrations_no_change(self):
        assert break_even_pmig(1000, 50, 50, 0) == 0.0

    def test_no_migrations_but_fewer_misses(self):
        assert break_even_pmig(1000, 50, 40, 0) == float("inf")

    def test_negative_when_migration_hurts(self):
        assert break_even_pmig(1000, 50, 80, 10) == -3.0
