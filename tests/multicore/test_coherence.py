"""Migration-mode L2 coherence protocol invariants (section 2.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.hierarchy import CoreCacheConfig
from repro.multicore.coherence import CoherentL2s


def small_l2s(num_cores=4) -> CoherentL2s:
    """Tiny L2s so evictions and conflicts happen quickly."""
    return CoherentL2s(
        num_cores,
        CoreCacheConfig(l2_bytes=16 * 64, l2_ways=4, l2_skewed=False),
    )


class TestBasics:
    def test_miss_allocates_in_active_l2_only(self):
        l2s = small_l2s()
        l2s.access(0, line=7, write=False)
        assert l2s.holders_of(7) == [0]

    def test_hit_after_fill(self):
        l2s = small_l2s()
        assert l2s.access(0, 7, write=False) is False
        assert l2s.access(0, 7, write=False) is True

    def test_each_core_fills_its_own_l2(self):
        l2s = small_l2s()
        l2s.access(0, 7, write=False)
        l2s.access(1, 7, write=False)
        assert l2s.holders_of(7) == [0, 1]

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            CoherentL2s(0)


class TestModifiedBit:
    def test_write_sets_modified_on_active(self):
        l2s = small_l2s()
        l2s.access(0, 7, write=True)
        assert l2s.modified_holder_of(7) == 0

    def test_write_demotes_inactive_copies_without_invalidating(self):
        l2s = small_l2s()
        l2s.access(1, 7, write=True)  # core 1 owns it modified
        l2s.access(0, 7, write=True)  # core 0 writes: core 1 demoted
        assert l2s.holders_of(7) == [0, 1]  # still valid on core 1
        assert l2s.modified_holder_of(7) == 0

    def test_at_most_one_modified_copy_simple(self):
        l2s = small_l2s()
        for core in range(4):
            l2s.access(core, 7, write=True)
        l2s.check_invariant([7])

    def test_forward_from_modified_owner(self):
        """A modified remote copy is forwarded: write-back + demote."""
        l2s = small_l2s()
        l2s.access(1, 7, write=True)
        l2s.access(0, 7, write=False)  # miss on core 0, forward from 1
        assert l2s.stats.forwards == 1
        assert l2s.modified_holder_of(7) is None  # forwarding demotes

    def test_clean_remote_copy_not_forwarded(self):
        """A clean copy 'can be used only by the local core ... must be
        re-fetched from L3'."""
        l2s = small_l2s()
        l2s.access(1, 7, write=False)  # clean copy on core 1
        l2s.access(0, 7, write=False)
        assert l2s.stats.forwards == 0
        assert l2s.stats.l3_fetches == 2

    def test_modified_eviction_counts_writeback(self):
        l2s = CoherentL2s(
            2, CoreCacheConfig(l2_bytes=64, l2_ways=1, l2_skewed=False)
        )  # single-line L2s
        l2s.access(0, 1, write=True)
        l2s.access(0, 2, write=False)  # evicts modified line 1
        assert l2s.stats.writebacks == 1

    def test_inactive_update_counted(self):
        l2s = small_l2s()
        l2s.access(1, 7, write=False)  # clean copy on 1
        l2s.access(0, 7, write=True)  # write on 0 updates 1's copy
        assert l2s.stats.inactive_updates == 1


class TestStats:
    def test_misses_split_into_forwards_and_l3(self):
        l2s = small_l2s()
        l2s.access(0, 1, write=True)
        l2s.access(1, 1, write=False)  # forward
        l2s.access(1, 2, write=False)  # L3
        stats = l2s.stats
        assert stats.misses == 3
        assert stats.forwards + stats.l3_fetches == stats.misses

    def test_check_invariant_raises_on_violation(self):
        l2s = small_l2s()
        l2s.access(0, 7, write=True)
        # Corrupt deliberately.
        l2s.caches[1].fill(7, dirty=True)
        with pytest.raises(AssertionError):
            l2s.check_invariant([7])


@settings(max_examples=30, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # active core
            st.integers(min_value=0, max_value=40),  # line
            st.booleans(),  # write
        ),
        max_size=300,
    )
)
def test_at_most_one_modified_copy_always(operations):
    """Protocol invariant under arbitrary access interleavings."""
    l2s = small_l2s()
    lines = {line for _c, line, _w in operations}
    for core, line, write in operations:
        l2s.access(core, line, write=write)
        l2s.check_invariant(list(lines))
