"""The first-order timing / speedup model."""

import pytest

from repro.multicore.migration import break_even_pmig
from repro.multicore.timing import (
    TimingModel,
    break_even_pmig_timing,
    migration_speedup,
    speedup_curve,
)


class TestCycles:
    def test_decomposition(self):
        model = TimingModel(base_cpi=1.0, l2_hit_penalty=10, l3_penalty=100)
        cycles = model.cycles(
            instructions=1000, l2_accesses=50, l2_misses=10,
            migrations=2, pmig=5.0,
        )
        assert cycles == 1000 + 500 + 1000 + 1000

    def test_rejects_negative(self):
        model = TimingModel()
        with pytest.raises(ValueError):
            model.cycles(-1, 0, 0)
        with pytest.raises(ValueError):
            model.cycles(1, 0, 0, 0, pmig=-1)


class TestSpeedup:
    # A Table 2-ish row: migration halves L2 misses.
    ROW = dict(
        instructions=1_000_000,
        l1_misses=100_000,
        l2_misses_baseline=40_000,
        l2_misses_migrating=20_000,
        migrations=500,
    )

    def test_speedup_above_one_for_cheap_migrations(self):
        speedup = migration_speedup(TimingModel(), pmig=1.0, **self.ROW)
        assert speedup > 1.0

    def test_speedup_below_one_for_expensive_migrations(self):
        speedup = migration_speedup(TimingModel(), pmig=1000.0, **self.ROW)
        assert speedup < 1.0

    def test_curve_monotone_decreasing_in_pmig(self):
        curve = speedup_curve(TimingModel(), **self.ROW)
        speedups = [p.speedup for p in curve]
        assert speedups == sorted(speedups, reverse=True)

    def test_crossing_at_break_even(self):
        crossing = break_even_pmig_timing(
            self.ROW["l2_misses_baseline"],
            self.ROW["l2_misses_migrating"],
            self.ROW["migrations"],
        )
        just_below = migration_speedup(
            TimingModel(), pmig=crossing * 0.99, **self.ROW
        )
        just_above = migration_speedup(
            TimingModel(), pmig=crossing * 1.01, **self.ROW
        )
        assert just_below > 1.0 > just_above

    def test_timing_breakeven_matches_miss_arithmetic(self):
        """The timing-model crossing equals the paper's miss-count
        arithmetic regardless of penalties."""
        assert break_even_pmig_timing(40_000, 20_000, 500) == break_even_pmig(
            0, 40_000, 20_000, 500
        )

    def test_paper_mcf_gains_below_60(self):
        """Paper: on mcf (misses every 24 -> 36 instr, migration every
        4500 instr), gains appear iff P_mig < ~60."""
        instructions = 9_000_000
        row = dict(
            instructions=instructions,
            l1_misses=instructions // 14,
            l2_misses_baseline=instructions // 24,
            l2_misses_migrating=instructions // 36,
            migrations=instructions // 4500,
        )
        assert migration_speedup(TimingModel(), pmig=30, **row) > 1.0
        assert migration_speedup(TimingModel(), pmig=90, **row) < 1.0
