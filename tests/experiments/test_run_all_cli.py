"""The run_all command-line driver."""

import pytest

from repro.experiments.run_all import main


class TestCli:
    def test_speedups_experiment(self, capsys):
        assert main(
            ["--only", "speedups", "--workloads", "bisort", "--scale", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "Projected speedup" in out
        assert "bisort" in out

    def test_multiple_only_flags(self, capsys):
        assert main(
            [
                "--only", "table1",
                "--only", "speedups",
                "--workloads", "bisort",
                "--scale", "0.05",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Projected speedup" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--only", "nonsense"])

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["--only", "table1", "--workloads", "nope"])
