"""The run_all command-line driver."""

import pytest

from repro.experiments.run_all import main


class TestCli:
    def test_speedups_experiment(self, capsys):
        assert main(
            [
                "--only", "speedups",
                "--workloads", "bisort",
                "--scale", "0.05",
                "--no-cache", "--quiet",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Projected speedup" in out
        assert "bisort" in out

    def test_multiple_only_flags(self, capsys):
        assert main(
            [
                "--only", "table1",
                "--only", "speedups",
                "--workloads", "bisort",
                "--scale", "0.05",
                "--no-cache", "--quiet",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Projected speedup" in out

    def test_summary_line_on_success(self, capsys):
        assert main(
            [
                "--only", "table1",
                "--workloads", "bisort",
                "--scale", "0.05",
                "--no-cache", "--quiet",
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "run_all: 1/1 experiments ok" in err
        assert "cache hits" in err

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--only", "nonsense"])

    def test_unknown_workload_fails_with_nonzero_exit(self, capsys):
        assert main(
            ["--only", "table1", "--workloads", "nope", "--no-cache", "--quiet"]
        ) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err

    def test_profile_flag_dumps_per_job_stats(self, capsys, tmp_path):
        import pstats

        runlog = tmp_path / "events.jsonl"
        assert main(
            [
                "--only", "table2",
                "--workloads", "bisort",
                "--scale", "0.05",
                "--no-cache", "--quiet",
                "--runlog", str(runlog),
                "--profile",
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "[profile]" in err
        dumps = list((tmp_path / "profiles").glob("table2-bisort-*.prof"))
        assert len(dumps) == 1
        # the dump is a loadable cProfile stats file
        stats = pstats.Stats(str(dumps[0]))
        assert stats.total_calls > 0

    def test_profile_with_obs_dir(self, capsys, tmp_path):
        obs = tmp_path / "obs"
        assert main(
            [
                "--only", "table2",
                "--workloads", "bisort",
                "--scale", "0.05",
                "--no-cache", "--quiet",
                "--obs", str(obs),
                "--profile",
            ]
        ) == 0
        assert list((obs / "profiles").glob("*.prof"))
