"""Report rendering helpers."""

import math

from repro.experiments.report import ascii_curve, ratio_cell, render_rows, section


class TestAsciiCurve:
    def test_monotone_glyphs(self):
        curve = ascii_curve([1.0, 0.5, 0.0])
        assert curve[0] == "@"
        assert curve[-1] == " "
        assert len(curve) == 3

    def test_clamps_out_of_range(self):
        assert ascii_curve([2.0, -1.0]) == "@ "


class TestRatioCell:
    def test_two_decimals(self):
        assert ratio_cell(0.347) == "0.35"

    def test_nan_is_dash(self):
        assert ratio_cell(float("nan")) == "-"


class TestSection:
    def test_underlined(self):
        lines = section("Title").splitlines()
        assert lines == ["Title", "====="]


class TestRenderRows:
    def test_renders(self):
        text = render_rows(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "3" in text
