"""The table/figure drivers at miniature scale (full scale runs live in
benchmarks/)."""

import pytest

from repro.experiments.figure3 import render_figure3, run_figure3
from repro.experiments.figures45 import render_figures45, run_figures45
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import render_table2, run_table2


TINY = ["186.crafty", "bisort"]  # cheap workloads for driver tests


class TestTable1:
    def test_rows_and_rendering(self):
        rows = run_table1(TINY, scale=0.05)
        assert [r.name for r in rows] == TINY
        for row in rows:
            assert row.instructions > 0
            assert row.dl1_misses >= 0
        text = render_table1(rows)
        assert "Table 1" in text
        assert "bisort" in text

    def test_crafty_is_instruction_miss_heavy(self):
        """Table 1: crafty's IL1 misses dominate its DL1 misses."""
        rows = run_table1(["186.crafty"], scale=0.1)
        assert rows[0].il1_misses > rows[0].dl1_misses


class TestFigure3:
    def test_snapshots_at_requested_times(self):
        results = run_figure3(
            num_elements=400,
            window_size=20,
            snapshot_times=(5_000, 50_000),
        )
        assert set(results) == {"Circular", "HalfRandom(300)"}
        for snapshots in results.values():
            assert [s.time for s in snapshots] == [5_000, 50_000]
            assert len(snapshots[0].affinities) == 400

    def test_circular_converges_to_two_runs(self):
        results = run_figure3(
            num_elements=400, window_size=20, snapshot_times=(120_000,)
        )
        final = results["Circular"][-1]
        assert final.sign_runs <= 4
        assert 0.4 <= final.balance <= 0.6

    def test_rendering(self):
        results = run_figure3(
            num_elements=100, window_size=10, snapshot_times=(2_000,)
        )
        text = render_figure3(results)
        assert "Figure 3" in text


class TestFigures45:
    def test_rows_and_rendering(self):
        rows = run_figures45(TINY, scale=0.05)
        for row in rows:
            assert len(row.p1_curve) == 6
            assert len(row.p4_curve) == 6
            # Profiles are tail fractions: monotone non-increasing.
            assert list(row.p1_curve) == sorted(row.p1_curve, reverse=True)
        text = render_figures45(rows)
        assert "Figures 4-5" in text
        assert "bisort" in text


class TestTable2:
    def test_row_fields(self):
        rows = run_table2(["186.crafty"], scale=0.05)
        row = rows[0]
        assert row.instructions > 0
        assert row.l1_misses > 0
        assert row.instr_per_l1_miss > 1
        text = render_table2(rows)
        assert "Table 2" in text

    def test_ratio_semantics(self):
        from repro.experiments.table2 import Table2Row

        row = Table2Row(
            name="x",
            instructions=1000,
            l1_misses=100,
            l2_misses_baseline=50,
            l2_misses_migrating=25,
            migrations=5,
        )
        assert row.ratio == pytest.approx(0.5)
        assert row.instr_per_l2_miss == pytest.approx(20)
        assert row.instr_per_4xl2_miss == pytest.approx(40)
        assert row.break_even_pmig == pytest.approx(5.0)

    def test_nan_ratio_when_no_baseline_misses(self):
        from repro.experiments.table2 import Table2Row

        row = Table2Row("x", 1000, 10, 0, 0, 0)
        assert row.ratio != row.ratio  # NaN


class TestRunAllCli:
    def test_cli_runs_table1(self, capsys):
        from repro.experiments.run_all import main

        exit_code = main(
            ["--only", "table1", "--workloads", "bisort", "--scale", "0.05"]
        )
        assert exit_code == 0
        assert "Table 1" in capsys.readouterr().out
