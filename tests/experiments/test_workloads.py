"""Workload registry."""

import pytest

from repro.experiments.workloads import WORKLOAD_NAMES, workload, workload_names


class TestRegistry:
    def test_eighteen_workloads(self):
        assert len(WORKLOAD_NAMES) == 18

    def test_paper_order_spec_then_olden(self):
        names = workload_names()
        assert names[0] == "164.gzip"
        assert names[12] == "300.twolf"
        assert names[13:] == ["bh", "bisort", "em3d", "health", "mst"]

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            workload("nope")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            workload("179.art", scale=0)


class TestTraces:
    def test_spec_workload_scales(self):
        small = sum(1 for _ in workload("179.art", scale=0.01).accesses())
        large = sum(1 for _ in workload("179.art", scale=0.02).accesses())
        assert large > small

    def test_olden_workload_replayable(self):
        spec = workload("bisort", scale=0.05)
        a = sum(1 for _ in spec.accesses())
        b = sum(1 for _ in spec.accesses())
        assert a == b > 0

    def test_olden_flag(self):
        assert workload("mst").is_olden
        assert not workload("181.mcf").is_olden
