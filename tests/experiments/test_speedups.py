"""Speedup projection driver."""

from repro.experiments.speedups import (
    PAPER_PMIG_VALUES,
    project_speedups,
    render_speedups,
)
from repro.experiments.table2 import Table2Row


def winner_row() -> Table2Row:
    return Table2Row(
        name="winner",
        instructions=1_000_000,
        l1_misses=100_000,
        l2_misses_baseline=50_000,
        l2_misses_migrating=10_000,
        migrations=1_000,
    )


def neutral_row() -> Table2Row:
    return Table2Row(
        name="neutral",
        instructions=1_000_000,
        l1_misses=100_000,
        l2_misses_baseline=50_000,
        l2_misses_migrating=50_000,
        migrations=0,
    )


class TestProjection:
    def test_winner_speeds_up_at_low_pmig(self):
        rows = project_speedups([winner_row()])
        assert rows[0].speedups[0] > 1.2  # P_mig = 1

    def test_winner_degrades_past_break_even(self):
        rows = project_speedups([winner_row()])
        by_pmig = dict(zip(PAPER_PMIG_VALUES, rows[0].speedups))
        assert rows[0].break_even_pmig == 40
        assert by_pmig[20] > 1.0
        assert by_pmig[50] < 1.0

    def test_neutral_row_is_exactly_one(self):
        rows = project_speedups([neutral_row()])
        assert all(s == 1.0 for s in rows[0].speedups)

    def test_speedups_monotone_in_pmig(self):
        rows = project_speedups([winner_row()])
        assert list(rows[0].speedups) == sorted(rows[0].speedups, reverse=True)

    def test_rendering(self):
        text = render_speedups(project_speedups([winner_row(), neutral_row()]))
        assert "winner" in text and "Pmig=50" in text
