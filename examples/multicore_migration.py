#!/usr/bin/env python
"""Simulate the full four-core chip and watch execution migrate.

Runs one splittable workload (the 179.art model) through both machines
of Table 2 — a single core with one 512-KB L2, and the four-core chip
in migration mode — and reports the L2-miss reduction, the migration
frequency, and the break-even migration penalty P_mig, exactly the
quantities the paper's Table 2 and section 4.2 discussion use.

Run:  python examples/multicore_migration.py  [workload] [scale]
"""

import sys

from repro.caches.hierarchy import SingleCoreHierarchy
from repro.experiments.workloads import workload
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.multicore.migration import MigrationPenaltyModel, break_even_pmig


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "179.art"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    spec = workload(name, scale=scale)

    print(f"workload: {name} (scale {scale})")
    print("running the single-core baseline (one 512-KB L2)...")
    baseline = SingleCoreHierarchy()
    for access in spec.accesses():
        baseline.access(access)

    print("running the 4-core chip in migration mode...")
    chip = MultiCoreChip(ChipConfig())
    chip.run(spec.accesses())

    stats = chip.stats
    print(f"\ninstructions         : {stats.instructions:,}")
    print(f"L1 misses            : {stats.l1_misses:,}")
    print(f"L2 misses, 1 core    : {baseline.stats.l2_misses:,}")
    print(f"L2 misses, 4 cores   : {stats.l2_misses:,}  (with migration)")
    if baseline.stats.l2_misses:
        ratio = stats.l2_misses / baseline.stats.l2_misses
        print(f"ratio                : {ratio:.2f}  (< 1 means migration wins)")
    print(f"migrations           : {stats.migrations:,}")
    if stats.migrations:
        print(f"instr / migration    : {stats.instructions // stats.migrations:,}")
    pmig_max = break_even_pmig(
        stats.instructions,
        baseline.stats.l2_misses,
        stats.l2_misses,
        stats.migrations,
    )
    model = MigrationPenaltyModel()
    print(f"break-even P_mig     : {pmig_max:.1f} L2 misses per migration")
    print(
        f"modelled P_mig       : {model.relative_penalty():.2f} "
        f"({model.migration_cycles():.0f} cycles vs a "
        f"{model.l2_miss_penalty_cycles}-cycle L2 miss)"
    )
    if pmig_max > model.relative_penalty():
        print("=> execution migration wins on this workload")
    else:
        print("=> execution migration does not pay off on this workload")
    bus = chip.update_bus_bytes()
    print(
        f"update bus           : peak {bus['peak_bytes_per_cycle']:.0f} B/cycle "
        f"(section 2.3 estimate); store broadcast {bus['store_bytes']:,.0f} B; "
        f"L1 mirror fills {bus['l1_fill_bytes']:,.0f} B"
    )


if __name__ == "__main__":
    main()
