#!/usr/bin/env python
"""Scale the split beyond four cores (paper section 6).

The paper: "we believe it is possible to adapt it to a larger number of
cores."  This example splits one working set 2-, 4- and 8-ways with the
hierarchical controller and shows the aggregate-capacity effect on a
miniature chip: a working set that overflows four small L2s fits eight.

Run:  python examples/eight_way_scaling.py
"""

from collections import Counter

from repro.caches.hierarchy import CoreCacheConfig
from repro.core.controller import ControllerConfig
from repro.core.multiway import HierarchicalConfig, HierarchicalController
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.traces.synthetic import Circular, behavior_trace

TINY = CoreCacheConfig(
    il1_bytes=512, dl1_bytes=512, l1_ways=2, l2_bytes=4 * 1024, l2_ways=4
)


def split_quality(depth: int, working_set: int = 4000) -> None:
    controller = HierarchicalController(
        HierarchicalConfig(depth=depth, filter_bits=16)
    )
    last = {}
    for e in Circular(working_set).addresses(1_200_000):
        last[e] = controller.observe(e)
    sizes = sorted(Counter(last.values()).values())
    print(
        f"  {2 ** depth}-way: subset sizes {sizes}  "
        f"trans_freq={controller.stats.transition_frequency:.5f}"
    )


def chip_misses(num_cores: int, trace) -> int:
    if num_cores == 4:
        chip = MultiCoreChip(
            ChipConfig(
                num_cores=4,
                caches=TINY,
                controller=ControllerConfig(
                    num_subsets=4, filter_bits=12,
                    x_window_size=32, y_window_size=16, l2_filtering=True,
                ),
            )
        )
    else:
        chip = MultiCoreChip(
            ChipConfig(num_cores=num_cores, caches=TINY, controller=None),
            controller=HierarchicalController(
                HierarchicalConfig(
                    depth=num_cores.bit_length() - 1,
                    filter_bits=12,
                    root_window_size=32,
                    l2_filtering=True,
                )
            ),
        )
    chip.run(trace)
    return chip.stats.l2_misses


def main():
    print("Splitting Circular(4000) at increasing fan-out:")
    for depth in (1, 2, 3):
        split_quality(depth)

    print("\n24-KB working set on 4x4-KB vs 8x4-KB chips:")
    trace = list(behavior_trace(Circular(384), 400_000))
    four = chip_misses(4, trace)
    eight = chip_misses(8, trace)
    print(f"  4-core L2 misses : {four:>8,}")
    print(f"  8-core L2 misses : {eight:>8,}")
    print(f"  -> 8 cores remove {100 * (1 - eight / max(1, four)):.0f}% "
          "of the remaining misses")


if __name__ == "__main__":
    main()
