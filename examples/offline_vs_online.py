#!/usr/bin/env python
"""Compare the online affinity algorithm with offline partitioners.

Section 3.1 frames working-set splitting as NP-hard graph
bipartitioning.  This example builds the transition graph of a
reference stream and compares four splitters on cut quality:

* random balanced split (the floor: cut = 1/2 on anything),
* address-halving (layout luck),
* offline Kernighan-Lin (the classic heuristic, sees the whole trace),
* the online affinity algorithm (hardware-implementable, one pass).

Run:  python examples/offline_vs_online.py
"""

from repro.core import ControllerConfig, MigrationController
from repro.partition import (
    build_transition_graph,
    evaluate_partition,
    kernighan_lin_bipartition,
    random_split,
    address_halving_split,
    replay_transition_frequency,
)
from repro.traces import HalfRandom, UniformRandom


def compare(behavior, references=120_000):
    stream = list(behavior.addresses(references))
    graph = build_transition_graph(stream)
    print(f"\n=== {behavior.name}: {graph.num_nodes} lines, "
          f"{graph.total_weight:,} transitions ===")

    rows = []
    for label, split in (
        ("random", random_split(graph.nodes, seed=0)),
        ("addr-half", address_halving_split(graph.nodes)),
        ("kernighan-lin", kernighan_lin_bipartition(graph, seed=0)),
    ):
        quality = evaluate_partition(graph, *split)
        rows.append((label, quality.cut_fraction, quality.balance))

    # The online algorithm: train a 2-way controller, then freeze its
    # assignment and measure the cut it implies.
    controller = MigrationController(
        ControllerConfig(num_subsets=2, x_window_size=64, filter_bits=16)
    )
    for line in stream:
        controller.observe(line)
    frozen = {
        line: 0 if (controller.affinity_of(line) or 0) >= 0 else 1
        for line in graph.nodes
    }
    cut = replay_transition_frequency(stream, frozen.__getitem__)
    balance = sum(1 for s in frozen.values() if s == 0) / max(1, len(frozen))
    rows.append(("affinity (online)", cut, max(balance, 1 - balance)))

    print(f"  {'method':<18} {'cut fraction':>12} {'balance':>9}")
    for label, cut_fraction, balance in rows:
        print(f"  {label:<18} {cut_fraction:>12.4f} {balance:>9.3f}")


def main():
    # Splittable: the affinity algorithm should approach KL.
    compare(HalfRandom(num_lines=800, burst=150, seed=3))
    # Unsplittable: everyone cuts about one half.
    compare(UniformRandom(num_lines=800, seed=3))


if __name__ == "__main__":
    main()
