#!/usr/bin/env python
"""Run a real linked-data-structure program and test its splittability.

The paper's conclusion argues execution migration is most interesting
for programs using linked data structures.  This example runs two
mini-Olden benchmarks *for real* on the traced heap — em3d (splittable
in the paper) and bisort (not) — filters their traces through the
16-KB L1s, and compares the single-stack profile p1 with the 4-way
split profile p4 (the Figures 4-5 methodology).

Run:  python examples/olden_splittability.py  [scale]
"""

import sys

from repro.analysis.splittability import splittability_report
from repro.analysis.stack_profiles import (
    PAPER_CACHE_SIZE_LABELS,
    run_stack_experiment,
)
from repro.olden import olden_benchmark
from repro.traces.filters import L1Filter


def analyse(name, scale):
    print(f"\n=== {name} (scale {scale}) ===")
    trace = olden_benchmark(name, scale=scale)
    print(f"  ran for real: {len(trace):,} accesses, "
          f"{trace.instruction_count:,} instructions")
    l1 = L1Filter()
    filtered = (ref.line for ref in l1.filter(trace.accesses()))
    result = run_stack_experiment(filtered, name=name)
    print(f"  L1 misses fed to stacks: {result.references:,}")
    p1, p4 = result.curves()
    print(f"  {'size':>6} | {'p1 (normal)':>11} | {'p4 (split)':>10}")
    for label, v1, v4 in zip(PAPER_CACHE_SIZE_LABELS, p1, p4):
        print(f"  {label:>6} | {v1:>11.3f} | {v4:>10.3f}")
    report = splittability_report(result)
    print(f"  transition frequency: {report.transition_frequency:.4f}")
    print(f"  verdict: {'SPLITTABLE' if report.splittable else 'not splittable'}"
          f" (max miss-ratio gap {report.gap:.3f})")


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    analyse("em3d", scale)     # paper: splittable, Table 2 ratio 0.14
    analyse("bisort", scale)   # paper: not splittable, ratio 1.08


if __name__ == "__main__":
    main()
