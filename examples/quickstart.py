#!/usr/bin/env python
"""Quickstart: split a working set online with the affinity algorithm.

This is the 60-second tour of the library's core idea (paper section 3):
feed cache-line references to a migration controller and watch it carve
the working set into balanced subsets, one per core, with rare
transitions between them.

Run:  python examples/quickstart.py
"""

from collections import Counter

from repro.core import ControllerConfig, MigrationController
from repro.traces import Circular, HalfRandom


def demo(behavior, references=400_000):
    """Run a 4-way controller over a behaviour and report the split."""
    controller = MigrationController(ControllerConfig.stack_experiment())
    assignment = {}
    for element in behavior.addresses(references):
        assignment[element] = controller.observe(element)
    sizes = Counter(assignment.values())
    stats = controller.stats
    print(f"\n{behavior.name}  ({references:,} references)")
    print(f"  subset sizes        : {dict(sorted(sizes.items()))}")
    print(f"  transitions         : {stats.transitions:,}")
    print(f"  transition frequency: {stats.transition_frequency:.5f}")
    print(
        "  -> a 4-core chip would hold each subset in one L2 and "
        f"migrate every ~{1 / max(stats.transition_frequency, 1e-9):,.0f} refs"
    )


def main():
    print("The affinity algorithm (Michaud, HPCA 2004) splits a working")
    print("set into balanced subsets online, in hardware-friendly O(1).")

    # A circular sweep (the common case after L1 filtering): splittable.
    demo(Circular(num_lines=4000))

    # Random bursts alternating between two halves: also splittable.
    demo(HalfRandom(num_lines=4000, burst=300))


if __name__ == "__main__":
    main()
