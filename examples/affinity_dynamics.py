#!/usr/bin/env python
"""Reproduce Figure 3: watch per-element affinities converge.

The paper's Figure 3 plots the affinity A_e of every element at
t = 20k, 100k and 1000k references for Circular and HalfRandom(300)
(N = 4000, |R| = 100).  This example regenerates those snapshots and
renders them as terminal heat-strips: '+' elements belong to one
subset, '-' to the other.  At convergence Circular shows exactly two
contiguous runs and HalfRandom shows one run per half.

Run:  python examples/affinity_dynamics.py
"""

from repro.experiments.figure3 import run_figure3


def strip(affinities, buckets=80):
    """Render 4000 affinities as an 80-character sign strip."""
    per_bucket = max(1, len(affinities) // buckets)
    cells = []
    for i in range(0, len(affinities), per_bucket):
        bucket = affinities[i : i + per_bucket]
        positive = sum(1 for a in bucket if a >= 0)
        share = positive / len(bucket)
        cells.append("+" if share > 0.75 else "-" if share < 0.25 else "~")
    return "".join(cells)


def main():
    print("Figure 3: affinity convergence (N=4000, |R|=100)")
    print("'+' / '-' = subset by affinity sign, '~' = mixed bucket\n")
    results = run_figure3()
    for behavior, snapshots in results.items():
        print(f"=== {behavior} ===")
        for snap in snapshots:
            print(
                f" t={snap.time:>9,}  "
                f"balance={snap.balance:.3f}  "
                f"runs={snap.sign_runs:>3}  "
                f"trans_freq={snap.tail_transition_frequency:.5f}"
            )
            print(f"   |{strip(snap.affinities)}|")
        final = snapshots[-1]
        ideal = (
            "1/2000 (= 2 per lap)" if "Circular" in behavior else "1/300"
        )
        print(f" paper's converged transition frequency: {ideal}\n")


if __name__ == "__main__":
    main()
