"""End-to-end chip throughput: per-access seed path vs the batched paths.

Times one Table 2 pointer-chasing workload (Olden ``mst``) through
:class:`~repro.multicore.chip.MultiCoreChip` five ways and writes
``benchmarks/BENCH_throughput.json``::

    python benchmarks/throughput_e2e.py [--scale 0.5] [--repeats 3]

* ``per_access`` — the seed path: ``chip.run(spec.accesses())``;
* ``batched`` — ``chip.run_arrays(*spec.arrays())``, the array-native
  fast path of :mod:`repro.kernels.batch`;
* ``filtered`` — the *inline* fast kernel (``_replay_chip_fast``)
  over a precomputed :class:`~repro.kernels.l1filter.L1FilterRecord`
  (the record build is timed separately as ``l1_filter_build_sec``; in
  a sweep it is paid once and shared by every variant);
* ``specialized`` — the shape-specialized generated kernel
  (:mod:`repro.kernels.specialize`, what ``run_filtered`` now
  dispatches to).  The reported number is the *warm* replay (per-record
  precompute memoised, as in any sweep replaying a record more than
  once — the same accounting as ``l1_filter_build_sec``); the cold
  first replay is reported separately as ``specialized_cold_sec``;
* ``segmented`` — segment-parallel replay
  (:mod:`repro.kernels.segmented`): snapshot capture is timed
  separately (``snapshot_capture_sec``, content-addressed and reused
  across runs), the reported time covers restoring every snapshot,
  replaying every segment, and digest-verifying the stitch, executed
  in-process (``jobs=1`` — the lower bound a multi-core box divides by
  the worker count).

Two additional *sweep* modes time the 3-variant population end to end
(``per_job_sweep_sec`` vs ``population_sec``, ratio
``population_speedup``): ``per_job`` pins the per-job replay semantics
the population path replaces — ``run_sweep`` fanning one scheduler
fork per variant, each deserializing its own copy of the ``.l1f.npz``
sidecar and walking the L2/affinity tag path through the scalar
reference twins (the inline kernels the vectorized specialized kernels
are differentially verified against) — while ``population`` runs
:func:`repro.kernels.sweep.evaluate_population`: one record load
shared by the whole population (``shared_record_loads`` must be
exactly 1), replayed through the specialized kernels with the
slot-matrix precompute paid once.  The variant rows of both must
match exactly.

Each timed run happens in a fresh subprocess and the configurations are
interleaved round-robin with best-of-N as the estimator, exactly like
``obs_overhead.py`` (machine weather dominates back-to-back blocks).
Every worker also prints its final ``ChipStats``; the script fails if
any path disagrees — the speedups only count because every path is
bit-identical to the seed path.

Exits non-zero when ``batched`` falls below ``--min-speedup`` or
``specialized`` falls below ``--min-specialized-speedup`` times the
per-access path (the CI gates).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

WORKLOAD = "mst"

_WORKER = """
import json, sys, time
sys.path.insert(0, sys.argv[1])
mode = sys.argv[2]
scale = float(sys.argv[3])
segments = int(sys.argv[4])
from repro.experiments.workloads import workload
from repro.multicore.chip import ChipConfig, MultiCoreChip
spec = workload({workload!r}, scale=scale)
arrays = spec.arrays()
build_sec = None
extra = {{}}
if mode in ("filtered", "specialized"):
    from repro.kernels.l1filter import build_l1_filter
    start = time.perf_counter()
    record = build_l1_filter(*arrays)
    build_sec = time.perf_counter() - start
chip = MultiCoreChip(ChipConfig())
if mode == "per_access":
    start = time.perf_counter()
    chip.run(spec.accesses())
    elapsed = time.perf_counter() - start
elif mode == "batched":
    start = time.perf_counter()
    chip.run_arrays(*arrays)
    elapsed = time.perf_counter() - start
elif mode == "filtered":
    from repro.kernels.batch import _replay_chip_fast
    rec_line = record.lines.tolist()
    rec_kind = record.kinds.tolist()
    start = time.perf_counter()
    _replay_chip_fast(
        chip, rec_line, rec_kind, record.accesses, record.max_instruction
    )
    elapsed = time.perf_counter() - start
elif mode == "specialized":
    from repro.kernels.specialize import replay_chip_specialized
    start = time.perf_counter()
    replay_chip_specialized(chip, record)
    extra["cold_sec"] = time.perf_counter() - start
    elapsed = None
    for _ in range(3):
        chip = MultiCoreChip(ChipConfig())
        start = time.perf_counter()
        replay_chip_specialized(chip, record)
        warm = time.perf_counter() - start
        elapsed = warm if elapsed is None else min(elapsed, warm)
elif mode == "per_job":
    # The per-job replay path the population mode replaces, pinned end
    # to end: ``run_sweep`` first maps the L1-filter wave (one
    # scheduler job that re-loads the prebuilt sidecar), then fans one
    # fork-worker job per variant — each of which deserializes the
    # sidecar for itself and replays through the *scalar reference
    # twins* (``_replay_hierarchy_fast`` / ``_replay_chip_fast``, the
    # inline per-access loops the vectorized specialized kernels are
    # differentially verified against; pinned below — forked workers
    # inherit the patches because ``run_filtered`` resolves the module
    # attribute at call time).  The timed region is the whole
    # run_sweep call.
    import repro.kernels.batch as batch
    from repro.experiments.variants import VARIANT_NAMES, run_sweep
    from repro.kernels.l1filter import drop_open_records, ensure_l1_filter
    from repro.runtime.cache import ResultCache
    from repro.runtime.events import EventBus
    from repro.runtime.scheduler import ExperimentRuntime, RuntimeConfig
    cache = ResultCache()
    start = time.perf_counter()
    ensure_l1_filter({workload!r}, scale=scale, cache=cache)
    build_sec = time.perf_counter() - start

    def _legacy_hier(hierarchy, record):
        record.require_match(hierarchy.config)
        batch._replay_hierarchy_fast(
            hierarchy,
            record.lines.tolist(),
            record.kinds.tolist(),
            record.accesses,
            record.max_instruction,
        )
        return hierarchy.stats

    def _legacy_chip(chip_, record):
        record.require_match(chip_.config.caches)
        batch._replay_chip_fast(
            chip_,
            record.lines.tolist(),
            record.kinds.tolist(),
            record.accesses,
            record.max_instruction,
        )
        return chip_.stats

    batch.run_hierarchy_filtered = _legacy_hier
    batch.run_chip_filtered = _legacy_chip
    drop_open_records()  # every worker loads the sidecar itself
    runtime = ExperimentRuntime(
        RuntimeConfig(jobs=3, use_cache=False), cache=cache, bus=EventBus([])
    )
    try:
        start = time.perf_counter()
        full_rows = run_sweep({workload!r}, scale=scale, runtime=runtime)
        elapsed = time.perf_counter() - start
    finally:
        runtime.close()
    extra["rows"] = [
        {{k: row[k] for k in (
            "variant", "l1_misses", "l2_accesses", "l2_misses",
            "migrations", "instructions",
        )}}
        for row in full_rows
    ]
    # the wave job and each of the three variant workers deserialize
    # the record once apiece
    extra["record_loads"] = 1 + len(VARIANT_NAMES)
    chip = None
    stats = None
elif mode == "population":
    # The population-batch path: evaluate_population loads the record
    # once in the coordinating process and replays every variant
    # against it in-process — record object, slot-matrix precompute,
    # and generated kernels all shared across the population (fanning
    # over the scheduler/service instead is ``run_all --population
    # --jobs N``: workers then share the record by fork inheritance or
    # shared memory, at one fork per job).  The timed region covers
    # the whole call, single record load included.
    from repro.kernels.l1filter import drop_open_records, ensure_l1_filter
    from repro.kernels.sweep import evaluate_population
    from repro.runtime.cache import ResultCache
    cache = ResultCache()
    start = time.perf_counter()
    ensure_l1_filter({workload!r}, scale=scale, cache=cache)
    build_sec = time.perf_counter() - start
    drop_open_records()  # the timed region pays the one record load itself
    start = time.perf_counter()
    result = evaluate_population({workload!r}, scale=scale, cache=cache)
    elapsed = time.perf_counter() - start
    extra["rows"] = [
        {{k: row[k] for k in (
            "variant", "l1_misses", "l2_accesses", "l2_misses",
            "migrations", "instructions",
        )}}
        for row in result.rows
    ]
    extra["record_loads"] = result.shared_record_loads
    extra["record_sources"] = result.record_sources
    chip = None
    stats = None
else:
    from repro.kernels.l1filter import ensure_l1_filter
    from repro.kernels.segmented import ensure_segment_snapshots, run_segmented
    from repro.runtime.cache import ResultCache
    from repro.runtime.scheduler import ExperimentRuntime, RuntimeConfig
    cache = ResultCache()
    start = time.perf_counter()
    record2, cached = ensure_l1_filter({workload!r}, scale=scale, cache=cache)
    build_sec = time.perf_counter() - start
    start = time.perf_counter()
    ensure_segment_snapshots(
        {workload!r}, scale=scale, segments=segments, cache=cache
    )
    extra["capture_sec"] = time.perf_counter() - start
    extra["segments"] = segments
    runtime = ExperimentRuntime(
        RuntimeConfig(jobs=1, use_cache=False), cache=cache
    )
    try:
        start = time.perf_counter()
        stitched = run_segmented(
            {workload!r}, scale=scale, segments=segments,
            runtime=runtime, cache=cache,
        )
        elapsed = time.perf_counter() - start
    finally:
        runtime.close()
    chip = None
    stats = stitched.stats.to_dict()
if chip is not None:
    stats = chip.stats.to_dict()
print(json.dumps({{
    "refs_per_sec": len(arrays[0]) / elapsed,
    "seconds": elapsed,
    "build_sec": build_sec,
    "stats": stats,
    **extra,
}}))
""".format(workload=WORKLOAD)

MODES = ("per_access", "batched", "filtered", "specialized", "segmented")
#: the sweep pair: the pinned per-job path vs the population-batch path
SWEEP_MODES = ("per_job", "population")


def _run_once(mode: str, scale: float, segments: int) -> "dict[str, object]":
    out = subprocess.run(
        [
            sys.executable, "-c", _WORKER,
            str(REPO_SRC), mode, str(scale), str(segments),
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def measure(
    scale: float, repeats: int, segments: int
) -> "tuple[dict[str, object], bool]":
    modes = MODES + SWEEP_MODES
    runs: "dict[str, list[dict[str, object]]]" = {m: [] for m in modes}
    for _ in range(repeats):  # interleaved: one round per repeat
        for mode in modes:
            runs[mode].append(_run_once(mode, scale, segments))
    best = {
        mode: max(results, key=lambda r: r["refs_per_sec"])
        for mode, results in runs.items()
    }
    stats = {mode: best[mode]["stats"] for mode in MODES}
    identical = all(stats[mode] == stats["per_access"] for mode in MODES)
    # The sweep pair must agree variant-by-variant (the population path
    # only counts if it reproduces the per-job numbers exactly).
    rows_identical = best["per_job"]["rows"] == best["population"]["rows"]
    identical = identical and rows_identical
    base = best["per_access"]["refs_per_sec"]

    def speedup(mode: str) -> float:
        return round(best[mode]["refs_per_sec"] / base, 2)

    result = {
        "workload": f"{WORKLOAD} (Olden), scale={scale}",
        "references": stats["per_access"]["accesses"],
        "repeats": repeats,
        "estimator": "best-of-N per mode, modes interleaved",
        "refs_per_sec": {
            mode: round(r["refs_per_sec"], 1) for mode, r in best.items()
        },
        "seconds": {mode: round(r["seconds"], 3) for mode, r in best.items()},
        "l1_filter_build_sec": round(best["filtered"]["build_sec"], 3),
        "specialized_cold_sec": round(best["specialized"]["cold_sec"], 3),
        "snapshot_capture_sec": round(best["segmented"]["capture_sec"], 3),
        "segments": segments,
        "batched_speedup": speedup("batched"),
        "filtered_speedup": speedup("filtered"),
        "specialized_speedup": speedup("specialized"),
        "segmented_speedup": speedup("segmented"),
        "per_job_sweep_sec": round(best["per_job"]["seconds"], 3),
        "population_sec": round(best["population"]["seconds"], 3),
        "population_speedup": round(
            best["per_job"]["seconds"] / best["population"]["seconds"], 2
        ),
        "shared_record_loads": best["population"]["record_loads"],
        "per_job_record_loads": best["per_job"]["record_loads"],
        "population_record_sources": best["population"]["record_sources"],
        "population_rows_identical": rows_identical,
        "stats_identical": identical,
        "chip_stats": stats["per_access"],
    }
    return result, identical


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--segments", type=int, default=2)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail when batched_speedup falls below this (CI gate)",
    )
    parser.add_argument(
        "--min-specialized-speedup",
        type=float,
        default=1.0,
        help="fail when specialized_speedup falls below this (CI gate)",
    )
    parser.add_argument(
        "--min-population-speedup",
        type=float,
        default=1.0,
        help="fail when population_speedup falls below this, or the "
        "population performed more than one record load (CI gate)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).parent / "BENCH_throughput.json"),
    )
    args = parser.parse_args(argv)
    result, identical = measure(args.scale, args.repeats, args.segments)
    Path(args.output).write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    if not identical:
        print("FAIL: ChipStats differ between paths", file=sys.stderr)
        return 2
    if result["batched_speedup"] < args.min_speedup:
        print(
            f"FAIL: batched speedup {result['batched_speedup']} < "
            f"{args.min_speedup}",
            file=sys.stderr,
        )
        return 1
    if result["specialized_speedup"] < args.min_specialized_speedup:
        print(
            f"FAIL: specialized speedup {result['specialized_speedup']} < "
            f"{args.min_specialized_speedup}",
            file=sys.stderr,
        )
        return 1
    if result["population_speedup"] < args.min_population_speedup:
        print(
            f"FAIL: population speedup {result['population_speedup']} < "
            f"{args.min_population_speedup}",
            file=sys.stderr,
        )
        return 1
    if result["shared_record_loads"] != 1:
        print(
            f"FAIL: population performed {result['shared_record_loads']} "
            "record loads (expected exactly 1)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
