"""End-to-end chip throughput: per-access seed path vs the batched paths.

Times one Table 2 pointer-chasing workload (Olden ``mst``) through
:class:`~repro.multicore.chip.MultiCoreChip` three ways and writes
``benchmarks/BENCH_throughput.json``::

    python benchmarks/throughput_e2e.py [--scale 0.5] [--repeats 3]

* ``per_access`` — the seed path: ``chip.run(spec.accesses())``;
* ``batched`` — ``chip.run_arrays(*spec.arrays())``, the array-native
  fast path of :mod:`repro.kernels.batch`;
* ``filtered`` — ``chip.run_filtered(record)``, replaying a
  precomputed :class:`~repro.kernels.l1filter.L1FilterRecord` (the
  record build is timed separately as ``l1_filter_build_sec``; in a
  sweep it is paid once and shared by every variant).

Each timed run happens in a fresh subprocess and the configurations are
interleaved round-robin with best-of-N as the estimator, exactly like
``obs_overhead.py`` (machine weather dominates back-to-back blocks).
Every worker also prints its final ``ChipStats``; the script fails if
the three paths disagree — the speedup only counts because the batched
paths are bit-identical to the seed path.

Exits non-zero when the batched path is slower than ``--min-speedup``
times the per-access path (default 1.0), which is the CI gate.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

WORKLOAD = "mst"

_WORKER = """
import json, sys, time
sys.path.insert(0, sys.argv[1])
mode = sys.argv[2]
scale = float(sys.argv[3])
from repro.experiments.workloads import workload
from repro.multicore.chip import ChipConfig, MultiCoreChip
spec = workload({workload!r}, scale=scale)
arrays = spec.arrays()
build_sec = None
if mode == "filtered":
    from repro.kernels.l1filter import build_l1_filter
    start = time.perf_counter()
    record = build_l1_filter(*arrays)
    build_sec = time.perf_counter() - start
chip = MultiCoreChip(ChipConfig())
start = time.perf_counter()
if mode == "per_access":
    chip.run(spec.accesses())
elif mode == "batched":
    chip.run_arrays(*arrays)
else:
    chip.run_filtered(record)
elapsed = time.perf_counter() - start
print(json.dumps({{
    "refs_per_sec": len(arrays[0]) / elapsed,
    "seconds": elapsed,
    "build_sec": build_sec,
    "stats": chip.stats.to_dict(),
}}))
""".format(workload=WORKLOAD)

MODES = ("per_access", "batched", "filtered")


def _run_once(mode: str, scale: float) -> "dict[str, object]":
    out = subprocess.run(
        [sys.executable, "-c", _WORKER, str(REPO_SRC), mode, str(scale)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip())


def measure(scale: float, repeats: int) -> "tuple[dict[str, object], bool]":
    runs: "dict[str, list[dict[str, object]]]" = {m: [] for m in MODES}
    for _ in range(repeats):  # interleaved: one round per repeat
        for mode in MODES:
            runs[mode].append(_run_once(mode, scale))
    best = {
        mode: max(results, key=lambda r: r["refs_per_sec"])
        for mode, results in runs.items()
    }
    stats = {mode: r["stats"] for mode, r in best.items()}
    identical = stats["per_access"] == stats["batched"] == stats["filtered"]
    result = {
        "workload": f"{WORKLOAD} (Olden), scale={scale}",
        "references": stats["per_access"]["accesses"],
        "repeats": repeats,
        "estimator": "best-of-N per mode, modes interleaved",
        "refs_per_sec": {
            mode: round(r["refs_per_sec"], 1) for mode, r in best.items()
        },
        "seconds": {mode: round(r["seconds"], 3) for mode, r in best.items()},
        "l1_filter_build_sec": round(best["filtered"]["build_sec"], 3),
        "batched_speedup": round(
            best["batched"]["refs_per_sec"]
            / best["per_access"]["refs_per_sec"],
            2,
        ),
        "filtered_speedup": round(
            best["filtered"]["refs_per_sec"]
            / best["per_access"]["refs_per_sec"],
            2,
        ),
        "stats_identical": identical,
        "chip_stats": stats["per_access"],
    }
    return result, identical


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail when batched_speedup falls below this (CI gate)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).parent / "BENCH_throughput.json"),
    )
    args = parser.parse_args(argv)
    result, identical = measure(args.scale, args.repeats)
    Path(args.output).write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    if not identical:
        print("FAIL: ChipStats differ between paths", file=sys.stderr)
        return 2
    if result["batched_speedup"] < args.min_speedup:
        print(
            f"FAIL: batched speedup {result['batched_speedup']} < "
            f"{args.min_speedup}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
