"""Ablation (section 4.1, closing remark): cache-line size.

Paper: "We ran similar experiments with different cache line sizes, and
observed that 'splittability' is less pronounced with larger lines.
... using larger lines is like merging nodes, or equivalently, adding
the constraint that merged nodes must be in the same subset.  This
constraint can only increase the minimum cut size."

To test exactly that merging effect, the two phases of a HalfRandom
working set are *interleaved in the address space*: phase-A elements at
even 64-byte lines, phase-B elements at odd ones.  With 64-byte lines
the set splits perfectly; with 128-byte (or larger) lines every line
holds one element of each phase, the merged nodes straddle the cut, and
splittability is destroyed by construction — the paper's argument made
literal.
"""

from conftest import run_once

from repro.analysis.splittability import profile_gap
from repro.analysis.stack_profiles import run_stack_experiment
from repro.core.controller import ControllerConfig
from repro.traces.synthetic import HalfRandom


def gap_for_line_size(line_size: int) -> float:
    behavior = HalfRandom(2000, 300, seed=6)
    half = behavior.num_lines // 2

    def interleaved_byte_address(element: int) -> int:
        if element < half:
            return (2 * element) * 64  # phase A: even 64-byte lines
        return (2 * (element - half) + 1) * 64  # phase B: odd lines

    references = (
        interleaved_byte_address(e) // line_size
        for e in behavior.addresses(500_000)
    )
    sizes_lines = [
        max(1, s // line_size)
        for s in (16 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 1 << 20)
    ]
    # 2-way splitting isolates the line-size question (4-way would fold
    # in the separate issue of splitting *within* a random half).
    config = ControllerConfig(num_subsets=2)
    result = run_stack_experiment(references, config=config)
    return profile_gap(result, sizes_lines)


def test_larger_lines_reduce_splittability(benchmark):
    def run():
        return {size: gap_for_line_size(size) for size in (64, 128, 256)}

    gaps = run_once(benchmark, run)
    print()
    print("profile gap (p1 - p4) vs line size (interleaved phases):")
    for size, gap in gaps.items():
        print(f"  {size:>5}-byte lines: gap={gap:.3f}")
    assert gaps[64] > 0.15  # 64-byte lines: cleanly splittable
    assert gaps[128] < gaps[64] / 2  # merged nodes straddle the cut
    assert gaps[256] < gaps[64] / 2
    benchmark.extra_info["gaps"] = {k: round(v, 4) for k, v in gaps.items()}
