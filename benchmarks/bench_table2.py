"""Table 2: the four-core processor with 512-KB L2 caches.

Regenerates the paper's headline table — instructions per L1 miss, per
L2 miss (single core), per L2 miss with migration ("4xL2"), the miss
ratio, and migrations — for all 18 workloads, and checks the paper's
qualitative outcome classes:

* migration removes L2 misses (ratio < 1): art, mcf, ammp, bzip2,
  em3d, health;
* neutral (ratio ~ 1): swim, mgrid, parser, twolf, mst (too-big or
  L2-resident working sets; "migrations are reduced thanks to the
  limited size affinity cache" / "L2 filtering is very effective");
* no benchmark melts down: migrations stay "under control" everywhere.
"""

from conftest import run_once

from repro.experiments.table2 import render_table2, run_table2

WINNERS = ("179.art", "188.ammp", "256.bzip2", "181.mcf", "em3d", "health")
NEUTRAL = ("171.swim", "172.mgrid", "197.parser", "300.twolf", "mst")
QUIET = ("300.twolf", "bh", "186.crafty")  # L2-resident: few migrations


def test_table2(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: run_table2(scale=bench_scale))
    print()
    print(render_table2(rows))

    by_name = {row.name: row for row in rows}
    assert len(rows) == 18

    # Convergence is trace-length-limited (DESIGN.md §6): at full
    # scale the winners must actually win; at reduced scale they must
    # at least never lose.
    win_threshold = 0.95 if bench_scale >= 0.75 else 1.02
    for name in WINNERS:
        assert by_name[name].ratio < win_threshold, (name, by_name[name].ratio)
    for name in NEUTRAL:
        ratio = by_name[name].ratio
        assert ratio != ratio or 0.85 <= ratio <= 1.25, (name, ratio)

    # L2 filtering keeps L2-resident working sets quiet (paper: "for
    # instance on benchmarks with a small working-set already fitting in
    # a single 512-Kbyte L2 cache (e.g., bh, 255.vortex, 186.crafty)").
    for name in QUIET:
        row = by_name[name]
        assert row.migrations < row.instructions / 50_000, (
            name,
            row.migrations,
        )

    # The paper's mcf discussion: tens of L2 misses removed per
    # migration on the winning pointer-chasing benchmark (needs a
    # converged split, hence full scale).
    if bench_scale >= 0.75:
        assert by_name["181.mcf"].break_even_pmig > 10

    benchmark.extra_info["ratios"] = {
        row.name: None if row.ratio != row.ratio else round(row.ratio, 3)
        for row in rows
    }
    benchmark.extra_info["migrations"] = {
        row.name: row.migrations for row in rows
    }
