"""Ablation (section 3.4): transition-filter width.

The paper's trade-off: each added filter bit halves the transition
frequency on unsplittable working sets (good: fewer useless migrations)
but doubles the reaction delay on splittable ones (bad: slower
adaptation).  Checks both directions plus the exact halving law at the
filter level under the paper's saturated-affinity idealisation.
"""

from conftest import run_once

from repro.analysis.sweeps import filter_width_sweep_with_runtime
from repro.common.rng import make_rng
from repro.core.transition_filter import TransitionFilter


def test_filter_width_on_random_set(benchmark, bench_runtime):
    points = run_once(
        benchmark,
        lambda: filter_width_sweep_with_runtime(
            bench_runtime,
            {"type": "uniform", "num_lines": 3000, "seed": 9},
            filter_bits_list=[16, 17, 18, 19],
            num_references=600_000,
        ),
    )
    print()
    print("UniformRandom(3000): transition frequency vs filter width")
    for point in points:
        print(f"  F={point.filter_bits} bits  tail_freq={point.tail_frequency:.5f}")
    frequencies = [p.tail_frequency for p in points]
    assert frequencies == sorted(frequencies, reverse=True)
    assert frequencies[0] > 3 * frequencies[-1]  # 3 bits ≈ 8x ideally
    benchmark.extra_info["frequencies"] = {
        p.filter_bits: round(p.tail_frequency, 5) for p in points
    }


def test_halving_law_saturated(benchmark):
    """1/2^(1+f-16) with affinities pinned at ±2^15 (paper's example:
    20-bit filter -> ~3%)."""

    def sweep():
        rng = make_rng(11)
        steps = rng.choice([-(1 << 15), 1 << 15], size=400_000)
        results = {}
        for bits in (17, 18, 19, 20):
            filter_ = TransitionFilter(bits)
            flips = 0
            previous = filter_.subset
            for step in steps:
                subset = filter_.update(int(step))
                if subset != previous:
                    flips += 1
                previous = subset
            results[bits] = flips / len(steps)
        return results

    results = run_once(benchmark, sweep)
    print()
    print("saturated-affinity flip rate vs width (ideal 1/2^(1+f-16)):")
    for bits, rate in results.items():
        print(f"  F={bits}  measured={rate:.5f}  ideal={1 / 2 ** (1 + bits - 16):.5f}")
    for bits, rate in results.items():
        ideal = 1 / 2 ** (1 + bits - 16)
        assert abs(rate - ideal) / ideal < 0.2, bits
    # The paper's 20-bit example: ~3%.
    assert results[20] < 0.04


def test_filter_width_delay_on_splittable_set(benchmark, bench_runtime):
    """Wider filters keep splittable sets transitioning, just later:
    the frequency stays near 1/m, the per-transition delay grows."""
    burst = 200
    points = run_once(
        benchmark,
        lambda: filter_width_sweep_with_runtime(
            bench_runtime,
            {"type": "halfrandom", "num_lines": 1000, "burst": burst, "seed": 2},
            filter_bits_list=[16, 18, 20],
            num_references=500_000,
            window_size=100,
        ),
    )
    print()
    print(f"HalfRandom({burst}): frequency vs width (should stay ~1/{burst})")
    for point in points:
        print(f"  F={point.filter_bits}  tail_freq={point.tail_frequency:.5f}")
    for point in points:
        assert point.tail_frequency > 1.0 / (4 * burst), point.filter_bits
