"""Ablation (section 3.5): working-set sampling.

Sampling shrinks the affinity cache (only sampled lines get entries)
and reduces filter updates proportionally ("if only 25% of references
update the transition filter, the transition filter can be 2 bits
shorter").  The split quality must survive sampling — that's the whole
point.
"""

from collections import Counter

import pytest
from conftest import run_once

from repro.analysis.sweeps import sampling_sweep
from repro.core.controller import ControllerConfig, MigrationController
from repro.core.sampling import SamplingPolicy
from repro.traces.synthetic import Circular


def test_sampling_reduces_filter_updates(benchmark):
    points = run_once(
        benchmark,
        lambda: sampling_sweep(
            lambda: Circular(3000),
            residue_counts=[31, 16, 8, 4],
            num_references=400_000,
        ),
    )
    print()
    print("Circular(3000): filter updates vs sampling ratio")
    for point in points:
        print(
            f"  residues={point.sampled_residues:>2}/31 "
            f"({point.sample_fraction:.2f})  updates={point.filter_updates:,}"
            f"  trans_freq={point.overall_frequency:.5f}"
        )
    updates = [p.filter_updates for p in points]
    assert updates == sorted(updates, reverse=True)
    # Update counts track the sampling fraction.
    assert updates[2] / updates[0] == pytest.approx(8 / 31, rel=0.1)
    benchmark.extra_info["updates"] = {
        p.sampled_residues: p.filter_updates for p in points
    }


def test_split_survives_25_percent_sampling(benchmark):
    """A 4-way controller with the paper's 25% sampling still quarters
    a circular working set."""

    def run():
        config = ControllerConfig(
            num_subsets=4,
            filter_bits=18,
            sampling=SamplingPolicy.quarter(),
        )
        controller = MigrationController(config)
        assignment = {}
        for element in Circular(4000).addresses(1_200_000):
            assignment[element] = controller.observe(element)
        return Counter(assignment.values()), controller.stats

    sizes, stats = run_once(benchmark, run)
    print()
    print(f"25%-sampled 4-way split of Circular(4000): {dict(sorted(sizes.items()))}")
    print(f"transition frequency: {stats.transition_frequency:.5f}")
    assert len(sizes) == 4
    assert min(sizes.values()) > 4000 * 0.12
    assert stats.transition_frequency < 0.01

