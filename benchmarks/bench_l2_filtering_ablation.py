"""Ablation (section 3.4, "L2 filtering"): update the transition filter
only on L2 misses.

Paper: "When a working-set fits in a single L2 cache, migrations are
useless ... it is possible to decrease unnecessary migrations by
updating the transition filter only on L2 misses" and, in section 4.2,
"L2 filtering is very effective at limiting unnecessary migrations".

The ablation runs the same L2-resident workload on the four-core chip
with and without L2 filtering and compares migration counts.
"""

from conftest import run_once

from repro.caches.hierarchy import CoreCacheConfig
from repro.core.controller import ControllerConfig
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.traces.synthetic import UniformRandom, behavior_trace

CACHES = CoreCacheConfig(
    il1_bytes=1024, dl1_bytes=1024, l1_ways=4, l2_bytes=8 * 1024, l2_ways=4
)


def run_chip(l2_filtering: bool) -> MultiCoreChip:
    controller = ControllerConfig(
        num_subsets=4,
        filter_bits=12,
        x_window_size=16,
        y_window_size=8,
        l2_filtering=l2_filtering,
    )
    chip = MultiCoreChip(
        ChipConfig(num_cores=4, caches=CACHES, controller=controller)
    )
    # 6 KB random working set: fits the 8 KB L2, misses the 1 KB L1s
    # constantly -> plenty of L1-miss requests, almost no L2 misses.
    chip.run(behavior_trace(UniformRandom(96, seed=5), 300_000))
    return chip


def test_l2_filtering_suppresses_useless_migrations(benchmark):
    def run():
        return run_chip(l2_filtering=True), run_chip(l2_filtering=False)

    filtered, unfiltered = run_once(benchmark, run)
    print()
    print("L2-resident random working set (fits one L2):")
    print(f"  with L2 filtering   : {filtered.stats.migrations:>8,} migrations")
    print(f"  without L2 filtering: {unfiltered.stats.migrations:>8,} migrations")
    assert filtered.stats.l2_misses < filtered.stats.l1_miss_requests / 20
    assert filtered.stats.migrations * 10 < unfiltered.stats.migrations
    benchmark.extra_info["migrations_filtered"] = filtered.stats.migrations
    benchmark.extra_info["migrations_unfiltered"] = unfiltered.stats.migrations
