"""Snapshot/restore/digest overhead micro-bench (CI artifact).

Measures the fixed costs segment-parallel replay pays per boundary —
capturing a :class:`~repro.multicore.state.ChipSnapshot` from a chip
with non-trivial deep state, persisting/loading the ``.npz``, restoring
onto a fresh chip, and content-hashing — plus the full capture pass of
:func:`repro.kernels.segmented.ensure_segment_snapshots`::

    python benchmarks/snapshot_overhead.py [--scale 0.2] [--segments 4]

Writes JSON to stdout and ``-o`` (default
``benchmarks/BENCH_snapshot_overhead.json`` — uploaded as a CI artifact
rather than committed: unlike the replay speedups it is pure fixed cost
and carries no gate).  The interesting ratio is ``capture_sec``
against the per-segment replay time in ``BENCH_throughput.json``:
snapshot overhead must stay a rounding error for segment-parallel
replay to scale.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(REPO_SRC))


def _best_of(repeats: int, fn) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def measure(scale: float, segments: int, repeats: int) -> "dict[str, object]":
    from repro.experiments.workloads import workload
    from repro.kernels.l1filter import build_l1_filter
    from repro.kernels.segmented import ensure_segment_snapshots
    from repro.kernels.specialize import replay_chip_slice
    from repro.multicore.chip import ChipConfig, MultiCoreChip
    from repro.multicore.state import (
        ChipSnapshot,
        chip_digest,
        restore_chip,
        snapshot_chip,
    )
    from repro.runtime.cache import ResultCache

    spec = workload("mst", scale=scale)
    record = build_l1_filter(*spec.arrays())
    chip = MultiCoreChip(ChipConfig())
    half = record.records // 2
    replay_chip_slice(
        chip, record, 0, half, n_accesses=int(record.indices[half])
    )

    snap = snapshot_chip(chip)
    state_bytes = sum(a.nbytes for a in snap.arrays.values())
    tmp = Path(tempfile.mkdtemp(prefix="snap-bench-"))
    try:
        path = tmp / "snap.npz"
        save_sec = _best_of(repeats, lambda: snap.save(path))
        load_sec = _best_of(repeats, lambda: ChipSnapshot.load(path))
        npz_bytes = path.stat().st_size
        target = MultiCoreChip(ChipConfig())
        result = {
            "workload": f"mst (Olden), scale={scale}",
            "records": record.records,
            "repeats": repeats,
            "estimator": "best-of-N",
            "state_bytes": state_bytes,
            "npz_bytes": npz_bytes,
            "snapshot_sec": _best_of(repeats, lambda: snapshot_chip(chip)),
            "save_sec": save_sec,
            "load_sec": load_sec,
            "restore_sec": _best_of(repeats, lambda: restore_chip(target, snap)),
            "digest_sec": _best_of(repeats, lambda: chip_digest(chip)),
        }
        cache_dir = tmp / "cache"
        start = time.perf_counter()
        ensure_segment_snapshots(
            "mst", scale=scale, segments=segments,
            cache=ResultCache(cache_dir),
        )
        result["segments"] = segments
        result["capture_sec"] = round(time.perf_counter() - start, 4)
        for key in ("snapshot_sec", "save_sec", "load_sec",
                    "restore_sec", "digest_sec"):
            result[key] = round(result[key], 5)
        return result
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--segments", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).parent / "BENCH_snapshot_overhead.json"),
    )
    args = parser.parse_args(argv)
    result = measure(args.scale, args.segments, args.repeats)
    text = json.dumps(result, indent=2, sort_keys=True)
    Path(args.output).write_text(text + "\n", encoding="utf-8")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
