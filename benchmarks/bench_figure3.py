"""Figure 3: affinity dynamics on Circular and HalfRandom(300).

Regenerates the three snapshots (t = 20k, 100k, 1000k) of both
behaviours and checks the paper's converged transition frequencies:
~1/2000 on Circular, ~1/300 on HalfRandom(300).
"""

from conftest import run_once

from repro.experiments.figure3 import render_figure3, run_figure3


def test_figure3(benchmark):
    results = run_once(benchmark, run_figure3)
    print()
    print(render_figure3(results))

    circular = results["Circular"][-1]
    half_random = results["HalfRandom(300)"][-1]

    # Paper: optimal split at convergence — two sign runs, balance 1/2.
    assert circular.sign_runs <= 4
    assert 0.45 <= circular.balance <= 0.55
    assert half_random.sign_runs <= 4
    assert 0.45 <= half_random.balance <= 0.55

    # Paper: 1 transition / 2000 refs (Circular), 1 / 300 (HalfRandom).
    assert circular.tail_transition_frequency <= 2.0 / 2000 * 2
    assert half_random.tail_transition_frequency <= 1.0 / 300 * 2

    benchmark.extra_info["circular_trans_freq"] = (
        circular.tail_transition_frequency
    )
    benchmark.extra_info["halfrandom_trans_freq"] = (
        half_random.tail_transition_frequency
    )
    benchmark.extra_info["circular_sign_runs"] = circular.sign_runs
