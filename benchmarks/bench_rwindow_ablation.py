"""Ablation (section 3.3): R-window size.

Checks the paper's two R-window claims:

* Circular(N) splits iff N > 2|R| ("the algorithm is able to split a
  Circular working-set if N > 2|R|, but not if N <= 2|R|");
* after convergence the transition frequency never exceeds 1/(2|R|)
  ("the R-window acts as a sort of low-pass filter");
* HalfRandom(m) wants |R| not much larger than m ("one should not take
  |R| much larger than m").

Sweep points are submitted as jobs through the shared
:mod:`repro.runtime` (see ``conftest.bench_runtime``): reruns resolve
from the ``REPRO_CACHE_DIR`` result cache, and ``REPRO_BENCH_JOBS``
fans points out over worker processes.
"""

from conftest import run_once

from repro.analysis.sweeps import rwindow_sweep_with_runtime


def test_rwindow_circular(benchmark, bench_runtime):
    points = run_once(
        benchmark,
        lambda: rwindow_sweep_with_runtime(
            bench_runtime,
            {"type": "circular", "num_lines": 800},
            window_sizes=[25, 50, 100, 200, 400, 800],
            num_references=600_000,
        ),
    )
    print()
    print("Circular(800): split vs |R|  (paper: splits iff N > 2|R|)")
    for point in points:
        print(
            f"  |R|={point.window_size:>4}  tail_freq={point.tail_frequency:.5f}"
            f"  balance={point.balance:.3f}  split={point.split_achieved}"
        )
    by_window = {p.window_size: p for p in points}
    for window in (25, 50, 100, 200):  # N = 800 > 2|R|
        assert by_window[window].split_achieved, window
    for window in (400, 800):  # N <= 2|R|
        assert not by_window[window].split_achieved, window
    # Low-pass bound where split.
    for window in (25, 50, 100, 200):
        assert by_window[window].tail_frequency <= 1.5 / (2 * window)
    benchmark.extra_info["split_by_window"] = {
        p.window_size: p.split_achieved for p in points
    }


def test_rwindow_halfrandom(benchmark, bench_runtime):
    """|R| ~ m splits HalfRandom(m); |R| >> m loses the positive
    feedback ('the positive feedback effect is lost in noise')."""
    burst = 50
    points = run_once(
        benchmark,
        lambda: rwindow_sweep_with_runtime(
            bench_runtime,
            {"type": "halfrandom", "num_lines": 1200, "burst": burst, "seed": 1},
            window_sizes=[25, 50, 400],
            num_references=600_000,
        ),
    )
    print()
    print(f"HalfRandom({burst}): split vs |R|")
    for point in points:
        print(
            f"  |R|={point.window_size:>4}  tail_freq={point.tail_frequency:.5f}"
            f"  balance={point.balance:.3f}  split={point.split_achieved}"
        )
    by_window = {p.window_size: p for p in points}
    assert 0.2 <= by_window[50].balance <= 0.8  # |R| = m: splits
    # |R| = 8m: visibly worse balance or much higher cut than |R| = m.
    degraded = (
        not (0.3 <= by_window[400].balance <= 0.7)
        or by_window[400].tail_frequency > 3 * by_window[50].tail_frequency
    )
    assert degraded
