"""Micro-benchmarks: simulation throughput of the hot components.

These are classic pytest-benchmark timing runs (multiple rounds) for
the structures everything else is built on.  They exist to catch
performance regressions in the simulator itself — the paper
reproductions above are throughput-bound on exactly these loops.

Each per-access loop is paired with its batched counterpart from
:mod:`repro.kernels` (``access_many`` / ``process_many`` /
``run_arrays`` / ``run_filtered``) so a session's JSON shows the
batched paths staying ahead.  The end-to-end chip pair (a Table 2
mst-class workload through ``chip.run`` vs the batched fast path) is
what ``benchmarks/throughput_e2e.py`` distils into
``BENCH_throughput.json`` for CI.
"""

import pytest

from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.lru_stack import LruStack
from repro.caches.set_assoc import SetAssociativeCache
from repro.caches.skewed import SkewedAssociativeCache
from repro.core.affinity_store import UnboundedAffinityStore
from repro.core.controller import ControllerConfig, MigrationController
from repro.core.mechanism import SplitMechanism
from repro.traces.synthetic import UniformRandom

_E2E_WORKLOAD = ("mst", 0.2)  #: Table 2 pointer-chasing class, trimmed


@pytest.fixture(scope="module")
def refs():
    """The shared 20k-reference stream, built on first use.

    A fixture (not a module-level constant) so merely importing or
    collecting this file costs nothing — the stream materialises only
    when a throughput test actually runs.
    """
    return list(UniformRandom(4096, seed=0).addresses(20_000))


@pytest.fixture(scope="module")
def e2e_trace():
    """One Table 2 workload as parallel arrays (and its L1 record)."""
    from repro.experiments.workloads import workload
    from repro.kernels.l1filter import build_l1_filter

    name, scale = _E2E_WORKLOAD
    spec = workload(name, scale=scale)
    arrays = spec.arrays()
    return spec, arrays, build_l1_filter(*arrays)


def test_fully_associative_cache_throughput(benchmark, refs):
    def run():
        cache = FullyAssociativeCache(1024)
        for line in refs:
            cache.access(line)
        return cache.stats.misses

    benchmark(run)


def test_fully_associative_cache_batched_throughput(benchmark, refs):
    def run():
        cache = FullyAssociativeCache(1024)
        cache.access_many(refs)
        return cache.stats.misses

    benchmark(run)


def test_set_associative_cache_throughput(benchmark, refs):
    def run():
        cache = SetAssociativeCache(256, 4)
        for line in refs:
            cache.access(line)
        return cache.stats.misses

    benchmark(run)


def test_set_associative_cache_batched_throughput(benchmark, refs):
    def run():
        cache = SetAssociativeCache(256, 4)
        cache.access_many(refs)
        return cache.stats.misses

    benchmark(run)


def test_skewed_cache_throughput(benchmark, refs):
    def run():
        cache = SkewedAssociativeCache(256, 4)
        for line in refs:
            cache.access(line)
        return cache.stats.misses

    benchmark(run)


def test_skewed_cache_batched_throughput(benchmark, refs):
    def run():
        cache = SkewedAssociativeCache(256, 4)
        cache.access_many(refs)
        return cache.stats.misses

    benchmark(run)


def test_lru_stack_throughput(benchmark, refs):
    def run():
        stack = LruStack()
        for line in refs:
            stack.access(line)
        return stack.references

    benchmark(run)


def test_mechanism_throughput(benchmark, refs):
    def run():
        mechanism = SplitMechanism(128, UnboundedAffinityStore())
        for line in refs:
            mechanism.process(line)
        return mechanism.references

    benchmark(run)


def test_mechanism_batched_throughput(benchmark, refs):
    def run():
        mechanism = SplitMechanism(128, UnboundedAffinityStore())
        mechanism.process_many(refs)
        return mechanism.references

    benchmark(run)


def test_controller_throughput(benchmark, refs):
    def run():
        controller = MigrationController(ControllerConfig.four_core())
        for line in refs:
            controller.observe(line)
        return controller.stats.references

    benchmark(run)


def test_chip_per_access_throughput(benchmark, e2e_trace):
    from repro.multicore.chip import ChipConfig, MultiCoreChip

    spec, _arrays, _record = e2e_trace

    def run():
        chip = MultiCoreChip(ChipConfig())
        chip.run(spec.accesses())
        return chip.stats.l2_misses

    benchmark(run)


def test_chip_batched_throughput(benchmark, e2e_trace):
    from repro.multicore.chip import ChipConfig, MultiCoreChip

    _spec, arrays, _record = e2e_trace

    def run():
        chip = MultiCoreChip(ChipConfig())
        chip.run_arrays(*arrays)
        return chip.stats.l2_misses

    benchmark(run)


def test_chip_filtered_throughput(benchmark, e2e_trace):
    from repro.multicore.chip import ChipConfig, MultiCoreChip

    _spec, _arrays, record = e2e_trace

    def run():
        chip = MultiCoreChip(ChipConfig())
        chip.run_filtered(record)
        return chip.stats.l2_misses

    benchmark(run)


def test_chip_inline_fast_throughput(benchmark, e2e_trace):
    """The pre-specialization inline kernel, kept as the reference twin
    (``run_filtered`` itself now dispatches to the generated kernel)."""
    from repro.kernels.batch import _replay_chip_fast
    from repro.multicore.chip import ChipConfig, MultiCoreChip

    _spec, _arrays, record = e2e_trace
    rec_line = record.lines.tolist()
    rec_kind = record.kinds.tolist()

    def run():
        chip = MultiCoreChip(ChipConfig())
        _replay_chip_fast(
            chip, rec_line, rec_kind, record.accesses, record.max_instruction
        )
        return chip.stats.l2_misses

    benchmark(run)


@pytest.fixture(scope="module")
def mid_replay_chip(e2e_trace):
    """A chip halfway through the e2e record (non-trivial deep state)."""
    from repro.kernels.specialize import replay_chip_slice
    from repro.multicore.chip import ChipConfig, MultiCoreChip

    _spec, _arrays, record = e2e_trace
    chip = MultiCoreChip(ChipConfig())
    half = record.records // 2
    replay_chip_slice(
        chip, record, 0, half, n_accesses=int(record.indices[half])
    )
    return chip


def test_snapshot_capture_throughput(benchmark, mid_replay_chip):
    from repro.multicore.state import snapshot_chip

    benchmark(lambda: len(snapshot_chip(mid_replay_chip).arrays))


def test_snapshot_restore_throughput(benchmark, mid_replay_chip):
    from repro.multicore.chip import MultiCoreChip
    from repro.multicore.state import restore_chip, snapshot_chip

    snap = snapshot_chip(mid_replay_chip)
    target = MultiCoreChip(mid_replay_chip.config)

    def run():
        restore_chip(target, snap)
        return target.engine.active_core

    benchmark(run)


def test_chip_digest_throughput(benchmark, mid_replay_chip):
    from repro.multicore.state import chip_digest

    benchmark(lambda: chip_digest(mid_replay_chip))
