"""Micro-benchmarks: simulation throughput of the hot components.

These are classic pytest-benchmark timing runs (multiple rounds) for
the structures everything else is built on.  They exist to catch
performance regressions in the simulator itself — the paper
reproductions above are throughput-bound on exactly these loops.
"""

from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.lru_stack import LruStack
from repro.caches.set_assoc import SetAssociativeCache
from repro.caches.skewed import SkewedAssociativeCache
from repro.core.affinity_store import UnboundedAffinityStore
from repro.core.controller import ControllerConfig, MigrationController
from repro.core.mechanism import SplitMechanism
from repro.traces.synthetic import UniformRandom

REFS = list(UniformRandom(4096, seed=0).addresses(20_000))


def test_fully_associative_cache_throughput(benchmark):
    def run():
        cache = FullyAssociativeCache(1024)
        for line in REFS:
            cache.access(line)
        return cache.stats.misses

    benchmark(run)


def test_set_associative_cache_throughput(benchmark):
    def run():
        cache = SetAssociativeCache(256, 4)
        for line in REFS:
            cache.access(line)
        return cache.stats.misses

    benchmark(run)


def test_skewed_cache_throughput(benchmark):
    def run():
        cache = SkewedAssociativeCache(256, 4)
        for line in REFS:
            cache.access(line)
        return cache.stats.misses

    benchmark(run)


def test_lru_stack_throughput(benchmark):
    def run():
        stack = LruStack()
        for line in REFS:
            stack.access(line)
        return stack.references

    benchmark(run)


def test_mechanism_throughput(benchmark):
    def run():
        mechanism = SplitMechanism(128, UnboundedAffinityStore())
        for line in REFS:
            mechanism.process(line)
        return mechanism.references

    benchmark(run)


def test_controller_throughput(benchmark):
    def run():
        controller = MigrationController(ControllerConfig.four_core())
        for line in REFS:
            controller.observe(line)
        return controller.stats.references

    benchmark(run)
