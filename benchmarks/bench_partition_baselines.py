"""Baseline comparison (section 3.1): online affinity vs offline
partitioners on cut quality.

The affinity algorithm is an online O(1) heuristic for an NP-hard
problem.  This bench quantifies what that costs: on splittable working
sets its frozen assignment should approach offline Kernighan-Lin's cut;
on random sets everyone is stuck at 1/2.
"""

from conftest import run_once

from repro.core.controller import ControllerConfig, MigrationController
from repro.partition import (
    build_transition_graph,
    evaluate_partition,
    kernighan_lin_bipartition,
    random_split,
    replay_transition_frequency,
)
from repro.traces.synthetic import HalfRandom, UniformRandom


def cuts_for(behavior, references=150_000):
    stream = list(behavior.addresses(references))
    graph = build_transition_graph(stream)
    kl = evaluate_partition(
        graph, *kernighan_lin_bipartition(graph, seed=0)
    ).cut_fraction
    rnd = evaluate_partition(
        graph, *random_split(graph.nodes, seed=0)
    ).cut_fraction
    controller = MigrationController(
        ControllerConfig(num_subsets=2, x_window_size=64, filter_bits=16)
    )
    for line in stream:
        controller.observe(line)
    frozen = {
        line: 0 if (controller.affinity_of(line) or 0) >= 0 else 1
        for line in graph.nodes
    }
    online = replay_transition_frequency(stream, frozen.__getitem__)
    return {"kl": kl, "random": rnd, "affinity": online}


def test_online_affinity_approaches_kl_on_splittable(benchmark):
    cuts = run_once(
        benchmark, lambda: cuts_for(HalfRandom(800, 150, seed=3))
    )
    print()
    print(f"HalfRandom(150) cuts: {cuts}")
    assert cuts["affinity"] < 0.05  # near-optimal (ideal 1/150 ≈ 0.007)
    assert cuts["affinity"] <= 3 * max(cuts["kl"], 1 / 150)
    assert cuts["random"] > 0.45
    benchmark.extra_info.update(cuts)


def test_everyone_fails_on_random(benchmark):
    cuts = run_once(
        benchmark, lambda: cuts_for(UniformRandom(800, seed=3))
    )
    print()
    print(f"UniformRandom cuts: {cuts}")
    # Section 3.4: no splitter beats 1/2 by much on a random stream.
    assert cuts["kl"] > 0.4
    assert cuts["random"] > 0.45
    # The online algorithm's *frozen assignment* also cuts ~1/2; the
    # transition filter is what keeps the hardware from acting on it.
    assert cuts["affinity"] > 0.4
    benchmark.extra_info.update(cuts)
