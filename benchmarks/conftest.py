"""Shared benchmark configuration.

Every benchmark regenerates one table/figure (or ablation) of the paper
at a configurable scale:

* ``REPRO_BENCH_SCALE`` (default 0.35) multiplies every workload's
  trace length.  ``pytest benchmarks/ --benchmark-only`` at the default
  scale finishes in ~20 minutes on one core; ``REPRO_BENCH_SCALE=1.0``
  reproduces the EXPERIMENTS.md numbers (about 4x longer).
* ``REPRO_CACHE_DIR`` points every benchmark at one shared
  :mod:`repro.runtime` result cache (default ``.repro-cache``), so
  re-running a benchmark session skips already-simulated jobs and CI
  can pin the cache to a workspace path for hermetic runs.
* ``REPRO_BENCH_JOBS`` (default 1) sets the runtime worker count for
  benchmarks that fan sweep points out through the runtime.
* Regenerated rows are printed (run with ``-s`` to see them) and the
  headline numbers are attached to each benchmark's ``extra_info`` so
  they land in the pytest-benchmark JSON.
"""

import os
from pathlib import Path

import pytest

from repro.runtime import (
    EventBus,
    ExperimentRuntime,
    ResultCache,
    RuntimeConfig,
    StderrSink,
)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


@pytest.fixture(scope="session")
def bench_cache_dir() -> Path:
    """One cache directory shared by every benchmark in the session."""
    path = Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def bench_runtime(bench_cache_dir: Path) -> ExperimentRuntime:
    """The session's shared experiment runtime (jobs via REPRO_BENCH_JOBS)."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return ExperimentRuntime(
        config=RuntimeConfig(jobs=jobs),
        cache=ResultCache(root=bench_cache_dir),
        bus=EventBus([StderrSink()]),
    )


def run_once(benchmark, fn):
    """Time one full regeneration (simulations are too slow to repeat)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
