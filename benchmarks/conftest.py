"""Shared benchmark configuration.

Every benchmark regenerates one table/figure (or ablation) of the paper
at a configurable scale:

* ``REPRO_BENCH_SCALE`` (default 0.35) multiplies every workload's
  trace length.  ``pytest benchmarks/ --benchmark-only`` at the default
  scale finishes in ~20 minutes on one core; ``REPRO_BENCH_SCALE=1.0``
  reproduces the EXPERIMENTS.md numbers (about 4x longer).
* Regenerated rows are printed (run with ``-s`` to see them) and the
  headline numbers are attached to each benchmark's ``extra_info`` so
  they land in the pytest-benchmark JSON.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


def run_once(benchmark, fn):
    """Time one full regeneration (simulations are too slow to repeat)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
