"""Measure the observability tax: chip throughput with probes off vs on.

The probe hooks are guarded by one ``if probe is not None`` attribute
check, so a run without ``--obs`` must stay within noise of the
pre-instrumentation simulator.  This script times the same synthetic
workload through :class:`~repro.multicore.chip.MultiCoreChip` three
ways — no probe, probe attached, probe attached with dense sampling —
and writes ``benchmarks/BENCH_obs_overhead.json``::

    python benchmarks/obs_overhead.py [--refs 200000] [--repeats 5]

Each configuration runs in its own subprocess and the configurations
are *interleaved* round-robin: on a shared machine, run-to-run
throughput swings far more than the effect under measurement, so
back-to-back blocks would mostly measure machine weather.  Best-of-N
per configuration is the estimator (the best run is the least
contended one).

``--seed-src PATH`` points at a checkout of the pre-observability tree
(e.g. a ``git worktree`` of the commit before ``repro.obs`` landed) and
measures it in the same interleaved session; without it the recorded
reference number below is used.  ``disabled_vs_seed_pct`` is the
acceptance figure: the disabled hooks must be free (within noise).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

#: refs/sec of this exact workload on the pre-observability tree
#: (commit 7fa9ce6), from an interleaved ``--seed-src`` session on the
#: reference machine.
SEED_REFS_PER_SEC = 53_192.3

NUM_LINES = 20_000
BURST = 5_000
SEED = 11

_WORKER = """
import sys, time
sys.path.insert(0, sys.argv[1])
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.traces.synthetic import HalfRandom, behavior_trace
refs = int(sys.argv[2])
interval = int(sys.argv[3])
kwargs = {{}}
if interval:
    from repro.obs import SimProbe
    # keyword passed only when instrumenting, so the same worker also
    # drives pre-observability trees (no probe= in their constructor)
    kwargs["probe"] = SimProbe(name="bench", sample_interval=interval)
trace = behavior_trace(
    HalfRandom({num_lines}, burst={burst}, seed={seed}), refs
)
chip = MultiCoreChip(ChipConfig(), **kwargs)
start = time.perf_counter()
chip.run(trace)
print(refs / (time.perf_counter() - start))
""".format(num_lines=NUM_LINES, burst=BURST, seed=SEED)


def _run_once(src: Path, refs: int, sample_interval: int) -> float:
    """One timed chip run in a fresh subprocess; returns refs/sec."""
    out = subprocess.run(
        [sys.executable, "-c", _WORKER, str(src), str(refs), str(sample_interval)],
        capture_output=True,
        text=True,
        check=True,
    )
    return float(out.stdout.strip())


def measure(
    refs: int, repeats: int, seed_src: "Path | None"
) -> "dict[str, object]":
    # (name, source tree, probe sample interval; 0 = no probe)
    configs = [
        ("disabled", REPO_SRC, 0),
        ("enabled", REPO_SRC, 1000),
        ("enabled_dense", REPO_SRC, 100),
    ]
    if seed_src is not None:
        configs.insert(0, ("seed", seed_src, 0))
    rates: "dict[str, list[float]]" = {name: [] for name, _, _ in configs}
    for _ in range(repeats):  # interleaved: one round per repeat
        for name, src, interval in configs:
            rates[name].append(_run_once(src, refs, interval))
    best = {name: max(values) for name, values in rates.items()}
    disabled = best["disabled"]
    seed = best.get("seed", SEED_REFS_PER_SEC)
    return {
        "workload": f"HalfRandom({NUM_LINES}, burst={BURST}, seed={SEED})",
        "references": refs,
        "repeats": repeats,
        "estimator": "best-of-N per config, configs interleaved",
        "refs_per_sec": {k: round(v, 1) for k, v in best.items()},
        "seed_refs_per_sec": round(seed, 1),
        "seed_measured_live": seed_src is not None,
        "disabled_vs_seed_pct": round((disabled - seed) / seed * 100, 2),
        "enabled_overhead_pct": round(
            (disabled - best["enabled"]) / disabled * 100, 2
        ),
        "enabled_dense_overhead_pct": round(
            (disabled - best["enabled_dense"]) / disabled * 100, 2
        ),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=200_000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--seed-src",
        type=Path,
        default=None,
        help="src/ of a pre-observability checkout to measure live",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).parent / "BENCH_obs_overhead.json"),
    )
    args = parser.parse_args(argv)
    result = measure(args.refs, args.repeats, args.seed_src)
    Path(args.output).write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
