"""Table 1: benchmark inventory (instructions, IL1/DL1 misses).

Regenerates the paper's benchmark table for all 18 workloads and checks
the qualitative calibration facts it encodes: the instruction-miss-heavy
benchmarks are gcc, crafty and vortex; everything else is data-miss
dominated.
"""

from conftest import run_once

from repro.experiments.table1 import render_table1, run_table1


def test_table1(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: run_table1(scale=bench_scale))
    print()
    print(render_table1(rows))

    by_name = {row.name: row for row in rows}
    assert len(rows) == 18

    # Paper Table 1: i-miss-heavy benchmarks.
    for name in ("176.gcc", "186.crafty", "255.vortex"):
        assert by_name[name].il1_misses > by_name[name].dl1_misses, name
    # Everyone else is data-dominated.
    for name in ("179.art", "181.mcf", "171.swim", "em3d", "health"):
        assert by_name[name].dl1_misses > by_name[name].il1_misses, name
    # Olden benchmarks have essentially no instruction misses (tiny code).
    for name in ("bh", "bisort", "em3d", "health", "mst"):
        assert by_name[name].il1_misses == 0, name

    benchmark.extra_info["rows"] = {
        row.name: {
            "instructions": row.instructions,
            "il1": row.il1_misses,
            "dl1": row.dl1_misses,
        }
        for row in rows
    }
