"""Extension bench (paper section 6): prefetching vs execution migration.

The paper's conclusion draws a careful boundary:

* "much of the 'splittability' we observed seems to come from circular
  working-set behaviors on which prefetching is likely to succeed" —
  on Circular, a stride prefetcher alone should remove most L2 misses,
  leaving migration little to add;
* "In theory, there is more to 'splittability' than predictability
  (e.g., HalfRandom)" — HalfRandom is *splittable but unpredictable*:
  the prefetcher is blind to it while migration still wins.

The bench runs the 2x2 grid {prefetch off/on} x {migration off/on} on
both behaviours, at the miniature Table 2 geometry.
"""

from conftest import run_once

from repro.caches.hierarchy import CoreCacheConfig, SingleCoreHierarchy
from repro.caches.prefetch import StridePrefetcher
from repro.core.controller import ControllerConfig
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.traces.synthetic import Circular, HalfRandom, behavior_trace

CACHES = CoreCacheConfig(
    il1_bytes=1024, dl1_bytes=1024, l1_ways=4, l2_bytes=8 * 1024, l2_ways=4
)
CONTROLLER = ControllerConfig(
    num_subsets=4, filter_bits=12, x_window_size=32, y_window_size=16,
    l2_filtering=True,
)


def l2_misses(trace, migration: bool, prefetch: bool) -> int:
    factory = (
        (lambda l2: StridePrefetcher(l2, degree=4)) if prefetch else None
    )
    if migration:
        chip = MultiCoreChip(
            ChipConfig(num_cores=4, caches=CACHES, controller=CONTROLLER),
            prefetcher_factory=factory,
        )
        chip.run(trace)
        return chip.stats.l2_misses
    hierarchy = SingleCoreHierarchy(CACHES, prefetcher_factory=factory)
    for access in trace:
        hierarchy.access(access)
    return hierarchy.stats.l2_misses


def grid(behavior, references):
    trace = list(behavior_trace(behavior, references))
    return {
        (migration, prefetch): l2_misses(trace, migration, prefetch)
        for migration in (False, True)
        for prefetch in (False, True)
    }


def show(name, results):
    print(f"\n{name}: L2 misses")
    print(f"  plain                 : {results[(False, False)]:>8,}")
    print(f"  prefetch only         : {results[(False, True)]:>8,}")
    print(f"  migration only        : {results[(True, False)]:>8,}")
    print(f"  prefetch + migration  : {results[(True, True)]:>8,}")


def test_prefetch_covers_circular(benchmark):
    """On a predictable circular sweep, prefetching alone removes most
    misses — migration's add-on is small (the paper's caveat)."""
    results = run_once(benchmark, lambda: grid(Circular(400), 300_000))
    show("Circular(400) (predictable, splittable)", results)
    plain = results[(False, False)]
    assert results[(False, True)] < plain * 0.4  # prefetch succeeds
    assert results[(True, False)] < plain * 0.5  # migration also wins
    benchmark.extra_info["misses"] = {
        f"mig={m},pf={p}": v for (m, p), v in results.items()
    }


def test_migration_wins_where_prefetch_cannot(benchmark):
    """HalfRandom: splittable but unpredictable — the regime where
    execution migration is *not* replaceable by prefetching."""
    # 200 lines = 12.8 KB: exceeds one 8-KB L2, each 6.4-KB half fits.
    results = run_once(
        benchmark, lambda: grid(HalfRandom(200, 2000, seed=7), 300_000)
    )
    show("HalfRandom (unpredictable, splittable)", results)
    plain = results[(False, False)]
    assert results[(False, True)] > plain * 0.8  # prefetch blind
    assert results[(True, False)] < plain * 0.6  # migration wins
    # And they compose: adding migration on top of prefetching helps.
    assert results[(True, True)] < results[(False, True)] * 0.7
    benchmark.extra_info["misses"] = {
        f"mig={m},pf={p}": v for (m, p), v in results.items()
    }
