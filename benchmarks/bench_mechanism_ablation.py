"""Ablations on the split mechanism itself (DESIGN.md items 1 and the
A_R register question).

* FIFO vs true-LRU R-window: the paper implements FIFO because LRU "can
  be costly to implement" and says the distinct-elements constraint "is
  not an essential feature" — both must split, with similar quality.
* Exact window-affinity tracking vs the literal Figure 2 register: the
  exact mode (our default) converges Circular to the optimal 2-piece
  split; the literal register fragments (see repro.core.mechanism).
"""

from conftest import run_once

from repro.core.affinity_store import UnboundedAffinityStore
from repro.core.mechanism import SplitMechanism
from repro.traces.synthetic import Circular


def run_mechanism(n=2000, refs=800_000, **kw):
    mechanism = SplitMechanism(100, UnboundedAffinityStore(), **kw)
    transitions_tail = 0
    previous = None
    tail_start = refs - 4 * n
    for i, e in enumerate(Circular(n).addresses(refs)):
        sign = mechanism.process(e) >= 0
        if previous is not None and sign != previous and i >= tail_start:
            transitions_tail += 1
        previous = sign
    signs = [(mechanism.affinity_of(e) or 0) >= 0 for e in range(n)]
    runs = sum(1 for i in range(n) if signs[i] != signs[i - 1])
    positive = sum(signs)
    return {
        "tail_freq": transitions_tail / (4 * n),
        "sign_runs": runs,
        "balance": positive / n,
    }


def test_fifo_vs_lru_window(benchmark):
    def run():
        return (
            run_mechanism(lru_window=False),
            run_mechanism(lru_window=True),
        )

    fifo, lru = run_once(benchmark, run)
    print()
    print(f"FIFO window: {fifo}")
    print(f"LRU window : {lru}")
    for result in (fifo, lru):
        assert 0.4 <= result["balance"] <= 0.6
        assert result["sign_runs"] <= 6
    benchmark.extra_info["fifo"] = fifo
    benchmark.extra_info["lru"] = lru


def test_exact_vs_literal_window_affinity(benchmark):
    def run():
        return (
            run_mechanism(track_true_window_affinity=True),
            run_mechanism(track_true_window_affinity=False),
        )

    exact, literal = run_once(benchmark, run)
    print()
    print(f"exact Σ A_e register  : {exact}")
    print(f"literal Fig.2 register: {literal}")
    # Both split in a balanced way...
    assert 0.35 <= exact["balance"] <= 0.65
    assert 0.35 <= literal["balance"] <= 0.65
    # ...but the exact register reaches the optimal (2-run) split with
    # the paper's 1/(N/2) transition frequency, while the literal one
    # fragments.
    assert exact["sign_runs"] <= 4
    assert exact["sign_runs"] < literal["sign_runs"]
    assert exact["tail_freq"] < literal["tail_freq"]
    benchmark.extra_info["exact"] = exact
    benchmark.extra_info["literal"] = literal
