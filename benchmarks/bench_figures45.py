"""Figures 4-5: LRU stack profiles p1 ("normal") vs p4 ("split").

Regenerates both curves for all 18 workloads at the paper's six cache
sizes and checks the splittability classification the paper reports:

* splittable (p4 visibly below p1): art, ammp, mcf, bzip2, em3d, health
  ("the curves for p1 and p4 are quite distinct ... 179.art, 188.ammp,
  bh, health, and several others");
* not splittable (p1 ~ p4): gzip, vpr, parser, bisort ("p1(x) and p4(x)
  are very close whatever value of x");
* everywhere: "the transition frequency remains low" (worst: vpr).
"""

from conftest import run_once

from repro.analysis.splittability import profile_gap
from repro.experiments.figures45 import render_figures45, run_figures45

SPLITTABLE = ("179.art", "188.ammp", "181.mcf", "256.bzip2", "em3d", "health")
UNSPLITTABLE = ("164.gzip", "175.vpr", "197.parser", "bisort")


def test_figures45(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: run_figures45(scale=bench_scale))
    print()
    print(render_figures45(rows))

    by_name = {row.name: row for row in rows}
    assert len(rows) == 18

    gap_threshold = 0.05 if bench_scale >= 0.75 else 0.02
    for name in SPLITTABLE:
        assert by_name[name].verdict.gap > gap_threshold, (
            name,
            by_name[name].verdict,
        )
    for name in UNSPLITTABLE:
        assert by_name[name].verdict.gap < 0.15, (name, by_name[name].verdict)

    # "In all cases, the transition frequency remains low" (paper max:
    # 1.34% on vpr; allow headroom at reduced scale).
    for row in rows:
        assert row.transition_frequency < 0.04, row.name

    benchmark.extra_info["gaps"] = {
        row.name: round(profile_gap_row(row), 4) for row in rows
    }
    benchmark.extra_info["transition_frequencies"] = {
        row.name: round(row.transition_frequency, 5) for row in rows
    }


def profile_gap_row(row):
    return max(a - b for a, b in zip(row.p1_curve, row.p4_curve))
