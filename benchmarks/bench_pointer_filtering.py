"""Extension bench (paper section 6): pointer-load filtering.

"One could decide to restrict the class of applications triggering
migrations by having the transition filter updated only on requests
coming from pointer loads."  The mini-Olden heap tags pointer
accesses, so the policy can be evaluated directly: transitions must
only go down, and linked-data-structure codes (the intended
beneficiaries) must keep transitioning.
"""

from conftest import run_once

from repro.analysis.pointer_filtering import run_pointer_filtering
from repro.olden import olden_benchmark


def test_pointer_filtering_on_olden(benchmark, bench_scale):
    def run():
        results = {}
        for name in ("em3d", "health", "bisort"):
            trace = olden_benchmark(name, scale=min(0.5, bench_scale))
            results[name] = run_pointer_filtering(trace)
        return results

    results = run_once(benchmark, run)
    print()
    print("transition filter updated on all misses vs pointer accesses only:")
    for name, result in results.items():
        print(
            f"  {name:8s} pointer_frac={result.pointer_fraction:.2f}  "
            f"trans all={result.transitions_unfiltered:>6,}  "
            f"pointer-only={result.transitions_pointer_only:>6,}  "
            f"suppression={result.suppression:.2f}"
        )
    for name, result in results.items():
        assert (
            result.transitions_pointer_only <= result.transitions_unfiltered
        ), name
        assert 0.0 < result.pointer_fraction < 1.0, name
    benchmark.extra_info["suppression"] = {
        name: round(result.suppression, 3) for name, result in results.items()
    }
