"""Setup shim: enables ``python setup.py develop`` in offline
environments that lack the ``wheel`` package (PEP 660 editable installs
need it; the legacy egg-link path does not).  Configuration lives in
``pyproject.toml``."""

from setuptools import setup

setup()
